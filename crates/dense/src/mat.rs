//! Row-major dense `f32` matrix.
//!
//! [`DMat`] is the single dense container used throughout the benchmark for
//! node-representation matrices (`n × F`), network weights (`F × F'`), and
//! gradients. It is deliberately simple: a `Vec<f32>` plus a shape, with the
//! hot kernels (matmul, SpMM) living in dedicated modules.

use std::fmt;

/// A dense row-major matrix of `f32` values.
///
/// ```
/// use sgnn_dense::DMat;
/// let mut m = DMat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// m.axpy(0.5, &DMat::eye(2));           // m += 0.5·I
/// assert_eq!(m.get(0, 0), 1.5);
/// assert_eq!(m.row(1), &[3.0, 4.5]);
/// ```
#[derive(Clone, PartialEq)]
pub struct DMat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for DMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DMat({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 36 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

impl DMat {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// An `rows × cols` matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix from an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must match shape");
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Heap bytes held by the value buffer; used by the memory instrumentation.
    #[inline]
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major buffer, mutably.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Sets every entry to `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.data.iter_mut().for_each(|x| *x = f(*x));
    }

    /// Returns a new matrix with `f` applied to every entry.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// `self += other`.
    pub fn add_assign_mat(&mut self, other: &DMat) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add");
        crate::backend::for_elementwise().add_assign(&mut self.data, &other.data);
    }

    /// `self -= other`.
    pub fn sub_assign_mat(&mut self, other: &DMat) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in sub");
        crate::backend::for_elementwise().sub_assign(&mut self.data, &other.data);
    }

    /// `self += alpha * other` (fused multiply–add over the buffer).
    pub fn axpy(&mut self, alpha: f32, other: &DMat) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in axpy");
        crate::backend::for_axpy().axpy(alpha, &other.data, &mut self.data);
    }

    /// Multiplies every entry by `s`.
    pub fn scale(&mut self, s: f32) {
        crate::backend::for_elementwise().scale(s, &mut self.data);
    }

    /// Returns `self * s` without mutating.
    pub fn scaled(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Element-wise product, in place.
    pub fn hadamard_assign(&mut self, other: &DMat) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in hadamard");
        crate::backend::for_elementwise().hadamard(&mut self.data, &other.data);
    }

    /// Frobenius inner product `⟨self, other⟩`, accumulated in `f64`.
    pub fn dot(&self, other: &DMat) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in dot");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DMat {
        let mut out = DMat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Gathers the listed rows into a new matrix (the mini-batch primitive).
    pub fn gather_rows(&self, idx: &[u32]) -> DMat {
        let mut out = DMat::zeros(idx.len(), self.cols);
        for (o, &i) in idx.iter().enumerate() {
            out.row_mut(o).copy_from_slice(self.row(i as usize));
        }
        out
    }

    /// [`gather_rows`](Self::gather_rows) into a caller-owned buffer —
    /// repeated gathers (a serving hot path) reuse one allocation.
    pub fn gather_rows_into(&self, idx: &[u32], out: &mut DMat) {
        assert_eq!(out.rows(), idx.len(), "gather output row mismatch");
        assert_eq!(out.cols(), self.cols, "gather output column mismatch");
        for (o, &i) in idx.iter().enumerate() {
            out.row_mut(o).copy_from_slice(self.row(i as usize));
        }
    }

    /// Scatter-adds `src` rows back into `self` at the listed positions
    /// (reverse of [`gather_rows`](Self::gather_rows)).
    pub fn scatter_add_rows(&mut self, idx: &[u32], src: &DMat) {
        assert_eq!(idx.len(), src.rows(), "index/source row mismatch");
        assert_eq!(self.cols, src.cols(), "column mismatch in scatter");
        for (o, &i) in idx.iter().enumerate() {
            let dst = self.row_mut(i as usize);
            for (d, s) in dst.iter_mut().zip(src.row(o)) {
                *d += s;
            }
        }
    }

    /// Sums each column into a length-`cols` vector (f64 accumulation).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0f64; self.cols];
        for row in self.row_iter() {
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += v as f64;
            }
        }
        sums
    }

    /// Horizontally concatenates matrices with equal row counts.
    pub fn hcat(parts: &[&DMat]) -> DMat {
        assert!(!parts.is_empty(), "hcat of zero matrices");
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "row mismatch in hcat");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = DMat::zeros(rows, cols);
        for r in 0..rows {
            let dst = out.row_mut(r);
            let mut off = 0;
            for p in parts {
                dst[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Vertically stacks matrices with equal column counts.
    pub fn vcat(parts: &[&DMat]) -> DMat {
        assert!(!parts.is_empty(), "vcat of zero matrices");
        let cols = parts[0].cols;
        assert!(
            parts.iter().all(|p| p.cols == cols),
            "column mismatch in vcat"
        );
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        DMat { rows, cols, data }
    }

    /// Row-wise L2 normalization (rows with zero norm are left untouched).
    pub fn l2_normalize_rows(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let n = row
                .iter()
                .map(|&x| (x as f64) * (x as f64))
                .sum::<f64>()
                .sqrt();
            if n > 0.0 {
                let inv = (1.0 / n) as f32;
                row.iter_mut().for_each(|x| *x *= inv);
            }
        }
    }

    /// True when any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = DMat::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn gather_rows_into_matches_gather_rows() {
        let m = DMat::from_fn(5, 3, |r, c| (r * 10 + c) as f32);
        let idx = [4u32, 0, 4, 2];
        let mut out = DMat::zeros(idx.len(), 3);
        m.gather_rows_into(&idx, &mut out);
        assert_eq!(out, m.gather_rows(&idx));
        // Reuse: a second gather overwrites every row of the same buffer.
        m.gather_rows_into(&[1, 1, 1, 1], &mut out);
        assert_eq!(out.row(3), m.row(1));
    }

    #[test]
    fn eye_is_identity_under_matmul_semantics() {
        let i = DMat::eye(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.data().iter().sum::<f32>(), 3.0);
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = DMat::filled(2, 2, 1.0);
        let b = DMat::from_fn(2, 2, |r, c| (r + c) as f32);
        a.axpy(2.0, &b);
        assert_eq!(a.get(1, 1), 1.0 + 2.0 * 2.0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = DMat::from_fn(3, 4, |r, c| (r * 7 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), m.get(1, 2));
    }

    #[test]
    fn gather_then_scatter_accumulates() {
        let m = DMat::from_fn(4, 2, |r, _| r as f32);
        let g = m.gather_rows(&[3, 1]);
        assert_eq!(g.row(0), &[3.0, 3.0]);
        let mut acc = DMat::zeros(4, 2);
        acc.scatter_add_rows(&[3, 1], &g);
        acc.scatter_add_rows(&[3, 0], &g);
        assert_eq!(acc.get(3, 0), 6.0);
        assert_eq!(acc.get(0, 0), 1.0);
    }

    #[test]
    fn hcat_vcat_shapes_and_values() {
        let a = DMat::filled(2, 1, 1.0);
        let b = DMat::filled(2, 2, 2.0);
        let h = DMat::hcat(&[&a, &b]);
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.row(0), &[1.0, 2.0, 2.0]);
        let v = DMat::vcat(&[&a, &a]);
        assert_eq!(v.shape(), (4, 1));
    }

    #[test]
    fn dot_and_norm_agree() {
        let m = DMat::from_fn(2, 2, |r, c| (r + c) as f32 + 1.0);
        let d = m.dot(&m);
        assert!((d.sqrt() - m.norm()).abs() < 1e-9);
    }

    #[test]
    fn l2_normalize_rows_handles_zero_rows() {
        let mut m = DMat::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        m.l2_normalize_rows();
        assert!((m.get(0, 0) - 0.6).abs() < 1e-6);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let mut a = DMat::zeros(2, 2);
        a.add_assign_mat(&DMat::zeros(2, 3));
    }
}
