//! Minimal data-parallel helpers built on `crossbeam` scoped threads.
//!
//! The benchmark's two hot kernels (dense matmul and sparse SpMM) are both
//! row-parallel: output rows are independent, so the output buffer is split
//! into contiguous chunks of whole rows and each chunk is processed by one
//! scoped thread. Thread count defaults to the machine parallelism and can be
//! pinned with the `SGNN_THREADS` environment variable (used by the Figure-5
//! hardware-sensitivity experiment).

use std::sync::atomic::{AtomicUsize, Ordering};

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins the number of worker threads (0 restores the default).
///
/// The Figure-5 experiment uses this to emulate hosts with slower/faster
/// CPU-side propagation.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Number of worker threads used by the parallel kernels.
pub fn num_threads() -> usize {
    let pinned = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if pinned > 0 {
        return pinned;
    }
    if let Ok(v) = std::env::var("SGNN_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f(first_row, chunk)` over contiguous chunks of whole rows of `data`.
///
/// `data` must have length `rows * cols`; each invocation receives the index
/// of its first row and a mutable slice covering complete rows. Falls back to
/// a single in-thread call when only one worker is available or the work is
/// tiny.
pub fn par_row_chunks<F>(data: &mut [f32], rows: usize, cols: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert_eq!(data.len(), rows * cols, "buffer must cover rows*cols");
    let threads = num_threads().min(rows.max(1));
    // Tiny problems are faster single-threaded than paying thread spawn cost.
    if threads <= 1 || rows * cols < 1 << 14 {
        f(0, data);
        return;
    }
    let rows_per = rows.div_ceil(threads);
    crossbeam::scope(|s| {
        let mut rest = data;
        let mut first = 0usize;
        while !rest.is_empty() {
            let take = (rows_per * cols).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let fr = first;
            let fref = &f;
            s.spawn(move |_| fref(fr, chunk));
            first += take / cols;
            rest = tail;
        }
    })
    .expect("worker thread panicked");
}

/// Runs `f(i)` for `i` in `0..n` across the worker pool, interleaved.
///
/// Used where per-item work is coarse (e.g. one filter per task).
pub fn par_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    crossbeam::scope(|s| {
        for t in 0..threads {
            let fref = &f;
            s.spawn(move |_| {
                let mut i = t;
                while i < n {
                    fref(i);
                    i += threads;
                }
            });
        }
    })
    .expect("worker thread panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunks_cover_all_rows_once() {
        let rows = 997;
        let cols = 33;
        let mut data = vec![0.0f32; rows * cols];
        par_row_chunks(&mut data, rows, cols, |first, chunk| {
            for (r, row) in chunk.chunks_exact_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (first + r) as f32;
                }
            }
        });
        for r in 0..rows {
            assert_eq!(data[r * cols], r as f32, "row {r} written exactly once");
        }
    }

    #[test]
    fn par_for_visits_every_index() {
        let sum = AtomicU64::new(0);
        par_for(1000, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn thread_override_round_trip() {
        set_threads(2);
        assert_eq!(num_threads(), 2);
        set_threads(0);
        assert!(num_threads() >= 1);
    }
}
