//! Back-compat shims over the persistent worker-pool [`runtime`].
//!
//! The original parallel layer spawned scoped threads per call; kernels now
//! dispatch onto long-lived pool workers (see [`crate::runtime`] for the
//! model). These free functions keep the historical names and exact
//! semantics so older call sites and out-of-tree users keep compiling —
//! new code should call the `runtime` API directly.

pub use crate::runtime::{num_threads, set_threads};

/// Runs `f(first_row, chunk)` over contiguous chunks of whole rows of `data`.
///
/// Thin wrapper over [`crate::runtime::run_chunks`].
pub fn par_row_chunks<F>(data: &mut [f32], rows: usize, cols: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    crate::runtime::run_chunks(data, rows, cols, f);
}

/// Runs `f(i)` for `i` in `0..n` across the worker pool, each index once.
///
/// Thin wrapper over [`crate::runtime::run_indexed`].
pub fn par_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    crate::runtime::run_indexed(n, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::test_lock::pin_threads;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn chunks_cover_all_rows_once() {
        let _g = pin_threads(4);
        let rows = 997;
        let cols = 33;
        let mut data = vec![0.0f32; rows * cols];
        par_row_chunks(&mut data, rows, cols, |first, chunk| {
            for (r, row) in chunk.chunks_exact_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (first + r) as f32;
                }
            }
        });
        for r in 0..rows {
            assert_eq!(data[r * cols], r as f32, "row {r} written exactly once");
        }
    }

    #[test]
    fn par_for_visits_every_index() {
        let _g = pin_threads(4);
        let sum = AtomicU64::new(0);
        par_for(1000, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn thread_override_round_trip() {
        let _g = pin_threads(2);
        assert_eq!(num_threads(), 2);
        set_threads(0);
        assert!(num_threads() >= 1);
    }
}
