//! Dense linear-algebra substrate for the spectral GNN benchmark.
//!
//! The benchmark has no GPU tensor library to lean on, so this crate provides
//! the dense building blocks used by every layer of the stack:
//!
//! * [`DMat`] — a row-major `f32` matrix used for node representations,
//!   weights, and gradients,
//! * a cache-blocked, multi-threaded [`matmul`](matmul::matmul),
//! * a cyclic-Jacobi [symmetric eigensolver](eigen::sym_eigen) for exact
//!   small-graph spectra,
//! * [Chebyshev approximation](cheb::ChebApprox) of scalar functions on an
//!   interval, used to synthesize exact spectral-filter targets without an
//!   eigendecomposition,
//! * seeded [random helpers](rng) (Box–Muller normals, permutations),
//! * the persistent worker-pool [`runtime`] that backs every parallel
//!   kernel in the workspace (row-chunked dispatch, indexed fan-out,
//!   collected maps, `SGNN_THREADS` control).
//!
//! Values are `f32` (matching the single-precision training of the original
//! study); reductions accumulate in `f64` to keep metrics stable.

pub mod backend;
pub mod cheb;
pub mod eigen;
pub mod mat;
pub mod matmul;
pub mod parallel;
pub mod rng;
pub mod runtime;
pub mod stats;

pub use cheb::ChebApprox;
pub use mat::DMat;
