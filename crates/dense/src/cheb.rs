//! Chebyshev approximation of scalar functions on an interval.
//!
//! The signal-regression task (Table 7) needs ground-truth responses
//! `z = g*(L̃)·x` for analytic filters such as `g*(λ) = e^{-10(λ-1)²}`.
//! Computing them by eigendecomposition is exactly what the paper rules out
//! at scale, so instead `g*` is expanded in Chebyshev polynomials on the
//! spectral interval `[0, 2]`; applying the expansion then costs only `K`
//! sparse propagations via the three-term recurrence (the same machinery the
//! ChebNet filter uses). For smooth `g*` the error decays geometrically in
//! the order, so order 64 is already at single-precision round-off.

/// A truncated Chebyshev expansion `f(x) ≈ Σ_k c_k T_k(s(x))` on `[a, b]`,
/// where `s` maps `[a, b]` to `[-1, 1]`.
#[derive(Clone, Debug)]
pub struct ChebApprox {
    coeffs: Vec<f64>,
    a: f64,
    b: f64,
}

impl ChebApprox {
    /// Fits an order-`order` expansion of `f` on `[a, b]` using the classic
    /// Chebyshev–Gauss quadrature at the Chebyshev nodes.
    pub fn fit(f: impl Fn(f64) -> f64, a: f64, b: f64, order: usize) -> Self {
        assert!(b > a, "invalid interval");
        let n = order + 1;
        // Samples at Chebyshev nodes x_j = cos(π (j + 1/2)/n), mapped to [a,b].
        let samples: Vec<f64> = (0..n)
            .map(|j| {
                let x = (std::f64::consts::PI * (j as f64 + 0.5) / n as f64).cos();
                f(0.5 * (b - a) * x + 0.5 * (b + a))
            })
            .collect();
        let mut coeffs = Vec::with_capacity(n);
        for k in 0..n {
            let mut s = 0.0;
            for (j, &fx) in samples.iter().enumerate() {
                s += fx * (std::f64::consts::PI * k as f64 * (j as f64 + 0.5) / n as f64).cos();
            }
            let norm = if k == 0 {
                1.0 / n as f64
            } else {
                2.0 / n as f64
            };
            coeffs.push(norm * s);
        }
        Self { coeffs, a, b }
    }

    /// The expansion coefficients `c_0..c_K`.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Expansion order `K`.
    pub fn order(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// The approximation interval `[a, b]`.
    pub fn interval(&self) -> (f64, f64) {
        (self.a, self.b)
    }

    /// Evaluates the expansion at `x` with Clenshaw's algorithm.
    pub fn eval(&self, x: f64) -> f64 {
        let t = (2.0 * x - self.a - self.b) / (self.b - self.a);
        let (mut bk1, mut bk2) = (0.0f64, 0.0f64);
        for &c in self.coeffs[1..].iter().rev() {
            let b = 2.0 * t * bk1 - bk2 + c;
            bk2 = bk1;
            bk1 = b;
        }
        t * bk1 - bk2 + self.coeffs[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_polynomial_exactly() {
        // T-degree-3 polynomial should be captured exactly by order >= 3.
        let f = |x: f64| 2.0 * x * x * x - x + 0.5;
        let c = ChebApprox::fit(f, -1.0, 1.0, 5);
        for i in 0..21 {
            let x = -1.0 + 0.1 * i as f64;
            assert!((c.eval(x) - f(x)).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn fits_gaussian_band_filter_on_spectral_interval() {
        // The Table-7 BAND signal: e^{-10 (λ-1)^2} on [0, 2].
        let f = |l: f64| (-10.0 * (l - 1.0) * (l - 1.0)).exp();
        let c = ChebApprox::fit(f, 0.0, 2.0, 64);
        for i in 0..=200 {
            let x = 2.0 * i as f64 / 200.0;
            assert!((c.eval(x) - f(x)).abs() < 1e-8, "x={x}");
        }
    }

    #[test]
    fn low_order_is_worse_than_high_order() {
        let f = |l: f64| (-10.0 * l * l).exp();
        let lo = ChebApprox::fit(f, 0.0, 2.0, 4);
        let hi = ChebApprox::fit(f, 0.0, 2.0, 40);
        let err = |c: &ChebApprox| {
            (0..=100)
                .map(|i| {
                    let x = 2.0 * i as f64 / 100.0;
                    (c.eval(x) - f(x)).abs()
                })
                .fold(0.0f64, f64::max)
        };
        assert!(err(&hi) < err(&lo) * 1e-2);
    }
}
