//! Persistent worker-pool runtime for all parallel kernels.
//!
//! The previous parallel layer spawned fresh scoped threads on every call —
//! acceptable for the two original hot kernels, but thread creation is a
//! per-call tax of tens of microseconds that dominates dispatch cost once
//! every row-parallel kernel, filter fan-out, and backward pass goes through
//! it. This module replaces per-call spawning with a lazily created pool of
//! long-lived workers parked on a condvar.
//!
//! # Dispatch model
//!
//! A parallel call posts one *job* — `n` independent tasks, executed by
//! calling a borrowed closure with indices `0..n`. Workers (and the calling
//! thread, which always participates) claim task indices from a shared
//! atomic cursor, so load balancing is dynamic. The caller returns only when
//! all `n` tasks have completed, which is what makes lending the closure —
//! and the mutable buffers it captures — to pool threads sound.
//!
//! # Thread-count semantics
//!
//! The effective width of each dispatch is [`num_threads`] at call time:
//! an explicit [`set_threads`] override if present, otherwise `SGNN_THREADS`
//! (read once per process and cached), otherwise the machine parallelism.
//! The pool grows on demand up to the requested width; shrinking is
//! logical — excess workers simply stop being offered work — so
//! `set_threads` can resize between dispatches without tearing threads down.
//!
//! # Panic propagation
//!
//! A panicking task is caught in the worker, recorded, and re-raised on the
//! calling thread as `"worker thread panicked"` once the job drains —
//! mirroring the old `crossbeam::scope(..).expect(..)` behavior. The pool
//! itself is unharmed: no lock is held while tasks run, so a panic cannot
//! poison the dispatch mutex, and subsequent jobs run normally.
//!
//! # Nesting
//!
//! Tasks that themselves call into [`run_chunks`]/[`run_indexed`]/[`run_map`]
//! execute the nested call serially inline (tracked by a thread-local flag).
//! Posting a nested job from inside a task could otherwise idle a worker on
//! work only the pool can finish.

use std::cell::Cell;
use std::mem::ManuallyDrop;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use sgnn_obs as obs;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

// Pool observability (all no-ops unless `sgnn_obs` is enabled; see the
// Observability section of DESIGN.md for the taxonomy). Utilization is
// derived offline as `pool.busy_ns / pool.lane_ns`: busy is the time lanes
// actually spent draining tasks, lane is dispatch wall-clock × lanes that
// joined, so the gap is parked/steal-idle time.
static DISPATCHES: obs::Counter = obs::Counter::new("pool.dispatches");
static TASKS: obs::Counter = obs::Counter::new("pool.tasks");
static SERIAL_INLINE: obs::Counter = obs::Counter::new("pool.serial_inline");
static NESTED_INLINE: obs::Counter = obs::Counter::new("pool.nested_inline");
static BUSY_NS: obs::Counter = obs::Counter::new("pool.busy_ns");
static LANE_NS: obs::Counter = obs::Counter::new("pool.lane_ns");
/// End-to-end dispatch latency (post → all tasks done), per dispatch.
static DISPATCH_NS: obs::Histogram = obs::Histogram::new("pool.dispatch_ns");

/// Counts a serial fallback: nested calls inside a pool task separately
/// from width-1 / tiny-problem inlining.
#[inline]
fn count_inline_fallback() {
    if obs::enabled() {
        if in_worker() {
            NESTED_INLINE.incr();
        } else {
            SERIAL_INLINE.incr();
        }
    }
}

/// Pins the number of worker threads (0 restores the default).
///
/// Takes effect at the next dispatch: the pool never shrinks its thread set,
/// but jobs posted after a `set_threads(n)` use at most `n` threads. The
/// Figure-5 experiment uses this to emulate hosts with slower/faster
/// CPU-side propagation.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Default thread count: `SGNN_THREADS` if set to a positive integer,
/// otherwise the machine parallelism. Computed once per process — kernel
/// dispatch must not pay an `env::var` syscall per call.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("SGNN_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Number of worker threads used by the parallel kernels.
pub fn num_threads() -> usize {
    let pinned = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if pinned > 0 {
        pinned
    } else {
        default_threads()
    }
}

thread_local! {
    /// True while this thread is executing a pool task (worker threads
    /// always; the dispatching thread during its participation). Nested
    /// parallel calls check this and run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// One posted job. Cloned into each participating thread; only `Arc`s and a
/// raw task pointer, so clones are cheap and never outlive anything they
/// don't own (the pointer is never dereferenced after the job drains —
/// see `run_tasks`).
#[derive(Clone)]
struct Job {
    task: TaskPtr,
    n: usize,
    /// Upper bound on pool workers that may join (the caller is extra).
    max_helpers: usize,
    /// Workers that have joined so far; admission ticket against
    /// `max_helpers`, which is how a `set_threads` shrink takes effect.
    joiners: Arc<AtomicUsize>,
    /// Next unclaimed task index.
    next: Arc<AtomicUsize>,
    /// Completed task count; the job is over when this reaches `n`.
    done: Arc<AtomicUsize>,
    panicked: Arc<AtomicBool>,
}

/// Lifetime-erased pointer to the borrowed task closure.
///
/// The dispatcher blocks until all `n` tasks complete, so the closure (and
/// everything it borrows) outlives every dereference; `Send`/`Sync` are
/// sound because the closure itself is `Sync` and only shared references to
/// it cross threads.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// Erases the closure borrow's lifetime so the pointer can sit in the
/// worker-visible job board.
///
/// SAFETY (caller): the dispatch that created the pointer must not return
/// until no thread can dereference it again (`run_tasks` guarantees this
/// once `done == n`).
#[allow(clippy::useless_transmute)]
fn erase<'a>(task: &'a (dyn Fn(usize) + Sync + 'a)) -> TaskPtr {
    TaskPtr(unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync + 'a), *const (dyn Fn(usize) + Sync)>(
            task,
        )
    })
}

/// Mutex-guarded job board. Workers sleep on `work_cv` until `seq` moves;
/// dispatchers sleep on `done_cv` until their job's `done` count fills.
struct Board {
    seq: u64,
    job: Option<Job>,
    workers: usize,
}

struct Shared {
    board: Mutex<Board>,
    work_cv: Condvar,
    done_cv: Condvar,
}

fn shared() -> &'static Arc<Shared> {
    static SHARED: OnceLock<Arc<Shared>> = OnceLock::new();
    SHARED.get_or_init(|| {
        Arc::new(Shared {
            board: Mutex::new(Board {
                seq: 0,
                job: None,
                workers: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        })
    })
}

fn worker_loop(shared: Arc<Shared>) {
    IN_WORKER.with(|f| f.set(true));
    let mut last_seq = 0u64;
    loop {
        let job = {
            let mut board = shared.board.lock().unwrap();
            loop {
                if board.seq != last_seq {
                    last_seq = board.seq;
                    if let Some(job) = board.job.clone() {
                        break job;
                    }
                }
                board = shared.work_cv.wait(board).unwrap();
            }
        };
        // Admission: a shrunken thread count shows up as a small
        // `max_helpers`, leaving surplus workers parked.
        if job.joiners.fetch_add(1, Ordering::Relaxed) < job.max_helpers {
            let busy_since = obs::enabled().then(Instant::now);
            run_tasks(&job, &shared);
            if let Some(t) = busy_since {
                BUSY_NS.add(t.elapsed().as_nanos() as u64);
            }
        }
    }
}

/// Claims and runs task indices until the cursor passes `n`.
///
/// Safety of the `task` dereference: an index `i < n` can only be claimed
/// while `done < n`, and the dispatching thread — which owns the closure's
/// borrow — does not return until `done == n`. Once the job drains, every
/// claim sees `i >= n` and the pointer is never touched again.
fn run_tasks(job: &Job, shared: &Shared) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.n {
            return;
        }
        let task = unsafe { &*job.task.0 };
        if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
            job.panicked.store(true, Ordering::Relaxed);
        }
        // AcqRel chains every task's writes into the release sequence the
        // dispatcher's final Acquire load synchronizes with.
        if job.done.fetch_add(1, Ordering::AcqRel) + 1 == job.n {
            // Lock before notifying so the wakeup cannot slip between the
            // dispatcher's re-check and its wait.
            drop(shared.board.lock().unwrap());
            shared.done_cv.notify_all();
        }
    }
}

/// Posts `n` tasks, participates in draining them, and blocks until all
/// complete. Re-raises worker panics as `"worker thread panicked"`.
///
/// `max_helpers` bounds how many pool workers may join; the posting thread
/// works regardless, so total concurrency is at most `max_helpers + 1`.
fn dispatch(n: usize, max_helpers: usize, task: &(dyn Fn(usize) + Sync)) {
    debug_assert!(n > 0 && max_helpers > 0);
    let _span = obs::span!("pool.dispatch", tasks = n, helpers = max_helpers);
    DISPATCHES.incr();
    TASKS.add(n as u64);
    let dispatched_at = obs::enabled().then(Instant::now);
    let shared = shared();
    let job = Job {
        task: erase(task),
        n,
        max_helpers,
        joiners: Arc::new(AtomicUsize::new(0)),
        next: Arc::new(AtomicUsize::new(0)),
        done: Arc::new(AtomicUsize::new(0)),
        panicked: Arc::new(AtomicBool::new(false)),
    };
    {
        let mut board = shared.board.lock().unwrap();
        // Grow the pool on demand up to the requested width. There is no
        // point spawning more helpers than tasks.
        let want = max_helpers.min(n);
        while board.workers < want {
            board.workers += 1;
            let worker_shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("sgnn-worker-{}", board.workers))
                .spawn(move || worker_loop(worker_shared))
                .expect("failed to spawn pool worker");
        }
        board.seq += 1;
        board.job = Some(job.clone());
        shared.work_cv.notify_all();
    }

    // Participate: the posting thread is one of the `threads` lanes. Flag it
    // as a worker so nested parallel calls from inside tasks run inline.
    IN_WORKER.with(|f| f.set(true));
    let busy_since = dispatched_at.map(|_| Instant::now());
    run_tasks(&job, shared);
    if let Some(t) = busy_since {
        BUSY_NS.add(t.elapsed().as_nanos() as u64);
    }
    IN_WORKER.with(|f| f.set(false));

    let mut board = shared.board.lock().unwrap();
    while job.done.load(Ordering::Acquire) < job.n {
        board = shared.done_cv.wait(board).unwrap();
    }
    // Retire the posting if it is still ours (a concurrent dispatch may
    // have replaced it already).
    if let Some(current) = &board.job {
        if Arc::ptr_eq(&current.done, &job.done) {
            board.job = None;
        }
    }
    drop(board);

    if let Some(t) = dispatched_at {
        let wall = t.elapsed().as_nanos() as u64;
        let lanes = job.joiners.load(Ordering::Relaxed).min(max_helpers) as u64 + 1;
        LANE_NS.add(wall.saturating_mul(lanes));
        DISPATCH_NS.record(wall);
    }

    if job.panicked.load(Ordering::Relaxed) {
        panic!("worker thread panicked");
    }
}

/// Raw-pointer wrapper that lets disjoint-range writers cross the closure
/// `Sync` bound. Every user must guarantee its index ranges are disjoint.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor rather than field access so closures capture the whole
    /// `Sync` wrapper (precise capture would otherwise grab the raw
    /// pointer field, which is not `Sync`).
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Runs `f(first_row, chunk)` over contiguous chunks of whole rows of `data`.
///
/// `data` must have length `rows * cols`; each invocation receives the index
/// of its first row and a mutable slice covering complete rows. Falls back to
/// a single in-thread call when only one lane is available, the work is tiny,
/// or the call is nested inside another pool task.
pub fn run_chunks<F>(data: &mut [f32], rows: usize, cols: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert_eq!(data.len(), rows * cols, "buffer must cover rows*cols");
    let threads = num_threads().min(rows.max(1));
    // Tiny problems are faster single-threaded than paying dispatch cost.
    if threads <= 1 || rows * cols < 1 << 14 || in_worker() {
        count_inline_fallback();
        f(0, data);
        return;
    }
    let rows_per = rows.div_ceil(threads);
    let n_chunks = rows.div_ceil(rows_per);
    let base = SendPtr(data.as_mut_ptr());
    dispatch(n_chunks, threads - 1, &|i: usize| {
        let first = i * rows_per;
        let take = rows_per.min(rows - first);
        // SAFETY: chunk i covers rows [first, first + take), and chunks are
        // pairwise disjoint by construction; `data` outlives the dispatch.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(first * cols), take * cols) };
        f(first, chunk);
    });
}

/// Runs `f(first_row, chunk)` over *caller-chosen* contiguous row chunks of
/// `data` — the scheduled counterpart of [`run_chunks`].
///
/// `boundaries` must be a monotone row partition starting at 0; chunk `i`
/// covers rows `boundaries[i]..boundaries[i + 1]` and `data` must have
/// `boundaries.last() * cols` entries. Chunks are claimed dynamically by the
/// pool, so callers that weight their boundaries by per-row cost (e.g. the
/// nnz-balanced SpMM plans in `sgnn-sparse`) get load balancing that a
/// row-count split cannot provide. Unlike [`run_chunks`] there is no
/// tiny-problem cutoff: the caller already decided the work is worth
/// scheduling (empty chunks are skipped). Falls back to one serial call for
/// width-1 pools and nested invocations, exactly like [`run_chunks`].
pub fn run_plan<F>(data: &mut [f32], cols: usize, boundaries: &[usize], f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(
        boundaries.first() == Some(&0) && boundaries.windows(2).all(|w| w[0] <= w[1]),
        "boundaries must be a monotone partition starting at 0"
    );
    let rows = *boundaries.last().unwrap();
    assert_eq!(data.len(), rows * cols, "buffer must cover rows*cols");
    let n_chunks = boundaries.len() - 1;
    let threads = num_threads().min(n_chunks.max(1));
    if threads <= 1 || in_worker() {
        count_inline_fallback();
        f(0, data);
        return;
    }
    let base = SendPtr(data.as_mut_ptr());
    dispatch(n_chunks, threads - 1, &|i: usize| {
        let first = boundaries[i];
        let take = boundaries[i + 1] - first;
        if take == 0 {
            return;
        }
        // SAFETY: boundaries are monotone, so chunk i's rows
        // [first, first + take) are pairwise disjoint from every other
        // chunk's; `data` outlives the dispatch.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(first * cols), take * cols) };
        f(first, chunk);
    });
}

/// [`run_plan`] plus one *auxiliary* task that runs concurrently with the
/// row chunks — the primitive behind double-buffered shard prefetch in
/// `sgnn-sparse` (decode shard `k+1` while the kernel consumes shard `k`).
///
/// The aux closure is posted as the first task of the job so a free lane
/// claims it before the row chunks drain; it runs exactly once. On width-1
/// pools and nested invocations the fallback is `aux()` followed by the
/// serial kernel, so the aux work still happens (synchronously) and results
/// are bit-identical to the parallel path.
pub fn run_plan_aux<F, A>(data: &mut [f32], cols: usize, boundaries: &[usize], aux: A, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
    A: FnOnce() + Send,
{
    assert!(
        boundaries.first() == Some(&0) && boundaries.windows(2).all(|w| w[0] <= w[1]),
        "boundaries must be a monotone partition starting at 0"
    );
    let rows = *boundaries.last().unwrap();
    assert_eq!(data.len(), rows * cols, "buffer must cover rows*cols");
    let n_chunks = boundaries.len() - 1;
    let threads = num_threads().min(n_chunks + 1);
    if threads <= 1 || in_worker() {
        count_inline_fallback();
        aux();
        f(0, data);
        return;
    }
    let aux_cell: Mutex<Option<A>> = Mutex::new(Some(aux));
    let base = SendPtr(data.as_mut_ptr());
    dispatch(n_chunks + 1, threads - 1, &|i: usize| {
        if i == 0 {
            // Take under the lock, run outside it: a panicking aux must not
            // poison the cell while other lanes are still probing it.
            let taken = aux_cell.lock().unwrap_or_else(|e| e.into_inner()).take();
            if let Some(aux) = taken {
                aux();
            }
            return;
        }
        let first = boundaries[i - 1];
        let take = boundaries[i] - first;
        if take == 0 {
            return;
        }
        // SAFETY: boundaries are monotone, so chunk i's rows
        // [first, first + take) are pairwise disjoint from every other
        // chunk's; `data` outlives the dispatch. The aux task never touches
        // `data`.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(first * cols), take * cols) };
        f(first, chunk);
    });
}

/// Runs `f(i)` for `i` in `0..n` across the pool, each index exactly once.
///
/// Indices are claimed dynamically, so coarse uneven tasks (e.g. one filter
/// per index) balance across lanes.
pub fn run_indexed<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || in_worker() {
        count_inline_fallback();
        for i in 0..n {
            f(i);
        }
        return;
    }
    dispatch(n, threads - 1, &f);
}

/// Collects `f(i)` for `i` in `0..n` into a `Vec`, computing entries across
/// the pool. Order matches the index, exactly as the serial map would.
pub fn run_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || in_worker() {
        count_inline_fallback();
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<std::mem::MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit contents are allowed to be uninitialized.
    unsafe { slots.set_len(n) };
    let base = SendPtr(slots.as_mut_ptr());
    dispatch(n, threads - 1, &|i: usize| {
        let v = f(i);
        // SAFETY: each index is claimed exactly once, so each slot is
        // written exactly once, and slot i is touched only by task i.
        unsafe { (*base.get().add(i)).write(v) };
    });
    // If a task panicked, `dispatch` has already re-raised and we never get
    // here; on success all n slots are initialized.
    let mut slots = ManuallyDrop::new(slots);
    unsafe { Vec::from_raw_parts(slots.as_mut_ptr().cast::<T>(), n, slots.capacity()) }
}

#[cfg(test)]
pub(crate) mod test_lock {
    //! `set_threads` mutates process-global state; tests that touch it
    //! serialize on this lock so the suite's default parallel execution
    //! cannot interleave overrides.

    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    /// Holds the lock and restores the default thread count on drop (even
    /// on panic, so `#[should_panic]` tests cannot leak an override).
    pub struct ThreadGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

    pub fn pin_threads(n: usize) -> ThreadGuard {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::set_threads(n);
        ThreadGuard(guard)
    }

    impl Drop for ThreadGuard {
        fn drop(&mut self) {
            super::set_threads(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_lock::pin_threads;
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_chunks_covers_all_rows_once() {
        let _g = pin_threads(4);
        let rows = 997;
        let cols = 33;
        let mut data = vec![0.0f32; rows * cols];
        run_chunks(&mut data, rows, cols, |first, chunk| {
            for (r, row) in chunk.chunks_exact_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (first + r) as f32;
                }
            }
        });
        for r in 0..rows {
            assert_eq!(data[r * cols], r as f32, "row {r} written exactly once");
        }
    }

    #[test]
    fn run_plan_covers_every_row_exactly_once() {
        let _g = pin_threads(4);
        let cols = 17;
        // Uneven partition, including an empty chunk.
        let boundaries = [0usize, 1, 1, 40, 200, 203];
        let rows = *boundaries.last().unwrap();
        let mut data = vec![0.0f32; rows * cols];
        run_plan(&mut data, cols, &boundaries, |first, chunk| {
            for (r, row) in chunk.chunks_exact_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (first + r) as f32 + 1.0;
                }
            }
        });
        for r in 0..rows {
            assert_eq!(data[r * cols], r as f32 + 1.0, "row {r} written once");
        }
    }

    #[test]
    fn run_plan_matches_run_chunks_bits() {
        let _g = pin_threads(3);
        let (rows, cols) = (257, 65);
        let kernel = |first: usize, chunk: &mut [f32]| {
            for (r, row) in chunk.chunks_exact_mut(cols).enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = ((first + r) as f32).mul_add(0.25, c as f32 * 0.5).sin();
                }
            }
        };
        let mut a = vec![0.0f32; rows * cols];
        run_chunks(&mut a, rows, cols, kernel);
        let mut b = vec![0.0f32; rows * cols];
        run_plan(&mut b, cols, &[0, 3, 100, 101, 250, 257], kernel);
        assert_eq!(a, b, "schedule must not change per-row results");
    }

    #[test]
    fn run_plan_aux_runs_aux_once_and_matches_run_plan() {
        for width in [1usize, 4] {
            let _g = pin_threads(width);
            let cols = 9;
            let boundaries = [0usize, 2, 2, 60, 150, 151];
            let rows = *boundaries.last().unwrap();
            let kernel = |first: usize, chunk: &mut [f32]| {
                for (r, row) in chunk.chunks_exact_mut(cols).enumerate() {
                    for (c, v) in row.iter_mut().enumerate() {
                        *v = ((first + r) as f32).mul_add(0.5, c as f32).cos();
                    }
                }
            };
            let mut a = vec![0.0f32; rows * cols];
            run_plan(&mut a, cols, &boundaries, kernel);
            let aux_runs = AtomicUsize::new(0);
            let mut b = vec![0.0f32; rows * cols];
            run_plan_aux(
                &mut b,
                cols,
                &boundaries,
                || {
                    aux_runs.fetch_add(1, Ordering::Relaxed);
                },
                kernel,
            );
            assert_eq!(aux_runs.load(Ordering::Relaxed), 1, "width {width}");
            assert_eq!(a, b, "aux task must not perturb kernel results");
        }
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn run_plan_aux_propagates_aux_panic() {
        let _g = pin_threads(4);
        let mut data = vec![0.0f32; 100 * 4];
        run_plan_aux(
            &mut data,
            4,
            &[0, 50, 100],
            || panic!("aux failed"),
            |_, _| {},
        );
    }

    #[test]
    fn run_indexed_visits_every_index() {
        let _g = pin_threads(4);
        let sum = AtomicU64::new(0);
        run_indexed(1000, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn run_map_preserves_index_order() {
        let _g = pin_threads(4);
        let out = run_map(257, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn nested_dispatch_runs_inline() {
        let _g = pin_threads(4);
        let total = AtomicU64::new(0);
        run_indexed(8, |_| {
            // Inner call must not deadlock or double-count; it runs serially
            // on whichever lane executes this task.
            run_indexed(10, |j| {
                total.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 45);
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn task_panic_propagates_to_dispatcher() {
        let _g = pin_threads(4);
        run_indexed(64, |i| {
            if i == 17 {
                panic!("boom in task");
            }
        });
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        let _g = pin_threads(4);
        let poisoned = std::panic::catch_unwind(|| {
            run_indexed(64, |i| {
                if i % 7 == 3 {
                    panic!("repeated failure");
                }
            });
        });
        assert!(poisoned.is_err(), "panicking job must re-raise");
        // The pool must keep dispatching normally afterwards: no poisoned
        // locks, no wedged workers.
        let sum = AtomicU64::new(0);
        run_indexed(500, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 499 * 500 / 2);
        let mut data = vec![1.0f32; 64 * 512];
        run_chunks(&mut data, 64, 512, |_, chunk| {
            for v in chunk {
                *v += 1.0;
            }
        });
        assert!(data.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn resize_between_dispatches_changes_width() {
        let _g = pin_threads(1);
        let seen = AtomicUsize::new(0);
        // Width 1: everything runs on the calling thread.
        run_indexed(32, |_| {
            assert!(in_worker() || num_threads() == 1);
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 32);
        // Resize mid-sequence; the next dispatch uses the new width and
        // still visits every index exactly once.
        set_threads(6);
        let sum = AtomicU64::new(0);
        run_indexed(1000, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }
}
