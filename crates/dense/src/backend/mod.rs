//! Compute-backend dispatch for the dense substrate.
//!
//! Every hot dense kernel — the GEMM inner loops of [`crate::matmul`], the
//! row-AXPY shared with the sparse SpMM (`sgnn_sparse::csr`), softmax
//! forward/backward, and the elementwise ops on [`crate::DMat`] — dispatches
//! through the [`Backend`] trait defined here instead of open-coding its
//! inner loop. Two implementations exist:
//!
//! * [`scalar::ScalarBackend`] — the portable reference. Its loops are the
//!   exact pre-refactor kernels (k-ordered `mul_add` chains), so selecting
//!   it reproduces historical results bit for bit.
//! * `avx2::Avx2Backend` (`x86_64` only) — AVX2+FMA microkernels behind
//!   `std::arch` runtime feature detection: a register-blocked MR×NR panel
//!   GEMM with packed B panels, 8-lane row-AXPY, and vectorized
//!   softmax/elementwise loops.
//!
//! # Bit-exactness contract
//!
//! The SIMD kernels are written to preserve the scalar kernels' reduction
//! *order*, not just their math: the panel GEMM keeps one FMA accumulator
//! chain per output element walking `k` in ascending order (vector lanes
//! parallelize across *columns*, which are independent), AXPY and the
//! elementwise ops are lane-wise with FMA tails, and softmax vectorizes only
//! the max-reduction (exact: `max` is associative) and the final scale while
//! keeping the serial `f64` sum of exponentials. Those kernels are therefore
//! **bit-identical** across backends and are pinned by the
//! `backend_equivalence` proptest suite with `to_bits` comparisons.
//!
//! The one exception is [`Backend::dot`] (the `A·Bᵀ` inner product): a SIMD
//! dot product must split the sequential FMA chain into lanes and reduce
//! horizontally, which reassociates the sum. `matmul_a_bt` under the SIMD
//! backend is tolerance-tested, exactly like the parallel `matmul_at_b`
//! reduction documented in [`crate::matmul`].
//!
//! # Selection
//!
//! `SGNN_BACKEND=scalar|simd|auto` (default `auto`) picks the backend; it is
//! read once and cached. `auto` probes `is_x86_feature_detected!` at first
//! use. Requesting `simd` on a host without AVX2+FMA falls back to scalar
//! (with a one-time stderr note) rather than failing — CI sets
//! `SGNN_BACKEND=simd` unconditionally. Tests and benches can override the
//! choice at runtime with [`set_backend`]; the selection is surfaced as the
//! `backend.selected` gauge (0 = scalar, 1 = simd) and per-kernel
//! `backend.dispatch.{gemm,axpy,softmax,elementwise}` counters.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use sgnn_obs as obs;

#[cfg(target_arch = "x86_64")]
mod avx2;
mod scalar;

pub use scalar::ScalarBackend;

static GEMM_DISPATCH: obs::Counter = obs::Counter::new("backend.dispatch.gemm");
static AXPY_DISPATCH: obs::Counter = obs::Counter::new("backend.dispatch.axpy");
static SOFTMAX_DISPATCH: obs::Counter = obs::Counter::new("backend.dispatch.softmax");
static ELEMENTWISE_DISPATCH: obs::Counter = obs::Counter::new("backend.dispatch.elementwise");

/// The kernel surface every compute backend implements.
///
/// Methods operate on whole rows/row-blocks so the virtual call is amortized
/// over the inner loop; nothing here is called per element. All slices are
/// row-major with the strides given by the caller.
pub trait Backend: Sync {
    /// Identifier reported in benches, traces, and `BENCH_gemm.json`.
    fn name(&self) -> &'static str;

    /// `out += A_rows · B` for a block of rows: `a` is `rows × k` (row-major),
    /// `b` is `k × n`, `out` is `rows × n` but sliced with a row stride of
    /// `n.max(1)` (mirroring the caller's chunking of degenerate shapes).
    ///
    /// Contract: one FMA accumulator chain per output element, `k` ascending
    /// — implementations must be bit-identical to
    /// [`ScalarBackend::gemm_block`].
    fn gemm_block(&self, a: &[f32], k: usize, b: &[f32], n: usize, out: &mut [f32]);

    /// Sequential-FMA inner product `Σ x[i]·y[i]` (the `A·Bᵀ` kernel). SIMD
    /// implementations may reassociate; see the module docs.
    fn dot(&self, x: &[f32], y: &[f32]) -> f32;

    /// `out[i] = fma(x[i], alpha, out[i])` — the SpMM row-AXPY and
    /// [`crate::DMat::axpy`] kernel. Lane-wise, bit-exact.
    fn axpy(&self, alpha: f32, x: &[f32], out: &mut [f32]);

    /// `x[i] *= s`. Bit-exact.
    fn scale(&self, s: f32, x: &mut [f32]);

    /// `a[i] += b[i]`. Bit-exact.
    fn add_assign(&self, a: &mut [f32], b: &[f32]);

    /// `a[i] -= b[i]`. Bit-exact.
    fn sub_assign(&self, a: &mut [f32], b: &[f32]);

    /// `a[i] *= b[i]` (Hadamard). Bit-exact.
    fn hadamard(&self, a: &mut [f32], b: &[f32]);

    /// `x[i] = max(x[i], 0)` with scalar `f32::max` NaN semantics
    /// (`NaN → 0`). Bit-exact.
    fn relu(&self, x: &mut [f32]);

    /// ReLU backward: `g[i] = 0` where `y[i] <= 0` (NaN `y` keeps `g`,
    /// matching the scalar comparison). Bit-exact.
    fn relu_bwd(&self, y: &[f32], g: &mut [f32]);

    /// Numerically stable in-place softmax of one row: subtract the row max,
    /// exponentiate, normalize by the serial `f64` sum. Bit-exact (the only
    /// vectorized reductions are `max`, which is associative, and the final
    /// elementwise scale).
    fn softmax_row(&self, row: &mut [f32]);

    /// Softmax backward for one row: `g[i] = y[i]·(g[i] − d)` where
    /// `d = Σ y[i]·g[i]` accumulated serially in `f64`. Bit-exact.
    fn softmax_bwd_row(&self, y: &[f32], g: &mut [f32]);

    /// Numerically stable in-place log-softmax of one row (the
    /// cross-entropy kernel): `x[i] −= ln(Σ exp(x[j] − m)) + m` with the
    /// serial `f64` log-sum-exp. Bit-exact — same reduction split as
    /// [`softmax_row`](Self::softmax_row).
    fn log_softmax_row(&self, row: &mut [f32]);
}

/// Backend choice, as selected by `SGNN_BACKEND` or [`set_backend`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackendKind {
    /// Portable reference kernels (pre-refactor bit behaviour).
    Scalar,
    /// AVX2+FMA microkernels (requires `x86_64` with both features).
    Simd,
}

static SCALAR: ScalarBackend = ScalarBackend;
#[cfg(target_arch = "x86_64")]
static SIMD: avx2::Avx2Backend = avx2::Avx2Backend;

/// True when the running CPU supports the SIMD backend (AVX2 and FMA).
pub fn simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static SUPPORTED: OnceLock<bool> = OnceLock::new();
        *SUPPORTED.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Runtime override: 0 = none (environment default), 1 = scalar, 2 = simd.
static KIND_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// `SGNN_BACKEND` environment default, read once. `auto` (and unset) probe
/// the CPU; an explicit `simd` on an unsupported host degrades to scalar
/// with a one-time note instead of aborting.
fn env_kind() -> BackendKind {
    static DEFAULT: OnceLock<BackendKind> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let want = std::env::var("SGNN_BACKEND").unwrap_or_default();
        let kind = match want.as_str() {
            "scalar" | "0" => BackendKind::Scalar,
            "simd" => {
                if simd_supported() {
                    BackendKind::Simd
                } else {
                    eprintln!(
                        "sgnn-dense: SGNN_BACKEND=simd requested but AVX2+FMA not available; \
                         falling back to the scalar backend"
                    );
                    BackendKind::Scalar
                }
            }
            // auto, unset, or anything unrecognized: detect.
            _ => {
                if simd_supported() {
                    BackendKind::Simd
                } else {
                    BackendKind::Scalar
                }
            }
        };
        publish_selection(kind);
        kind
    })
}

fn publish_selection(kind: BackendKind) {
    obs::gauge_set(
        "backend.selected",
        match kind {
            BackendKind::Scalar => 0,
            BackendKind::Simd => 1,
        },
    );
}

/// Forces a backend (benchmarks, equivalence tests, the forced-scalar
/// fallback test); `None` restores the `SGNN_BACKEND` default. Requesting
/// [`BackendKind::Simd`] on a host without AVX2+FMA is ignored (scalar is
/// used), so tests can call this unconditionally.
pub fn set_backend(kind: Option<BackendKind>) {
    let v = match kind {
        None => 0,
        Some(BackendKind::Scalar) => 1,
        Some(BackendKind::Simd) => 2,
    };
    KIND_OVERRIDE.store(v, Ordering::Relaxed);
    publish_selection(selected_kind());
}

/// The backend kind dispatches currently resolve to.
pub fn selected_kind() -> BackendKind {
    match KIND_OVERRIDE.load(Ordering::Relaxed) {
        1 => BackendKind::Scalar,
        2 => {
            if simd_supported() {
                BackendKind::Simd
            } else {
                BackendKind::Scalar
            }
        }
        _ => env_kind(),
    }
}

/// The active backend. First use resolves `SGNN_BACKEND` (cached) and emits
/// the `backend.selected` gauge.
#[inline]
pub fn active() -> &'static dyn Backend {
    match selected_kind() {
        BackendKind::Scalar => &SCALAR,
        #[cfg(target_arch = "x86_64")]
        BackendKind::Simd => &SIMD,
        #[cfg(not(target_arch = "x86_64"))]
        BackendKind::Simd => &SCALAR,
    }
}

/// The scalar reference backend, independent of selection (equivalence
/// tests compare against it directly).
pub fn scalar() -> &'static dyn Backend {
    &SCALAR
}

/// The SIMD backend when this host can run it, independent of selection —
/// `None` otherwise. The equivalence suite uses this to compare kernels
/// without mutating the global selection.
pub fn simd() -> Option<&'static dyn Backend> {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_supported() {
            return Some(&SIMD);
        }
    }
    None
}

// Dispatch accessors: one per counter family, called once per kernel-level
// operation (a whole matmul, a whole SpMM, one elementwise pass) — never per
// row or per element.

/// Backend for a GEMM-family dispatch (counts `backend.dispatch.gemm`).
#[inline]
pub fn for_gemm() -> &'static dyn Backend {
    GEMM_DISPATCH.incr();
    active()
}

/// Backend for a row-AXPY dispatch (counts `backend.dispatch.axpy`).
#[inline]
pub fn for_axpy() -> &'static dyn Backend {
    AXPY_DISPATCH.incr();
    active()
}

/// Backend for a softmax dispatch (counts `backend.dispatch.softmax`).
#[inline]
pub fn for_softmax() -> &'static dyn Backend {
    SOFTMAX_DISPATCH.incr();
    active()
}

/// Backend for an elementwise dispatch (counts
/// `backend.dispatch.elementwise`).
#[inline]
pub fn for_elementwise() -> &'static dyn Backend {
    ELEMENTWISE_DISPATCH.incr();
    active()
}

#[cfg(test)]
pub(crate) mod test_lock {
    //! `set_backend` mutates process-global state; tests that touch it
    //! serialize on this lock (mirroring `runtime::test_lock`).

    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub struct BackendGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

    pub fn pin_backend(kind: super::BackendKind) -> BackendGuard {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::set_backend(Some(kind));
        BackendGuard(guard)
    }

    impl Drop for BackendGuard {
        fn drop(&mut self) {
            super::set_backend(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_lock::pin_backend;
    use super::*;

    #[test]
    fn override_switches_kind_and_restores_default() {
        {
            let _g = pin_backend(BackendKind::Scalar);
            assert_eq!(selected_kind(), BackendKind::Scalar);
            assert_eq!(active().name(), "scalar");
        }
        // Default restored (whatever the environment resolves to).
        let _ = selected_kind();
    }

    #[test]
    fn simd_request_on_unsupported_host_degrades_to_scalar() {
        let _g = pin_backend(BackendKind::Simd);
        if simd_supported() {
            assert_eq!(selected_kind(), BackendKind::Simd);
            assert_eq!(active().name(), "avx2fma");
        } else {
            assert_eq!(selected_kind(), BackendKind::Scalar);
            assert_eq!(active().name(), "scalar");
        }
    }

    #[test]
    fn scalar_accessor_is_always_scalar() {
        let _g = pin_backend(BackendKind::Simd);
        assert_eq!(scalar().name(), "scalar");
    }
}
