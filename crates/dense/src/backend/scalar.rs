//! Portable reference backend.
//!
//! These are the pre-refactor inner loops, moved verbatim behind the
//! [`Backend`](super::Backend) trait: k-ordered `mul_add` accumulation for
//! GEMM and dot, lane-wise `mul_add` AXPY, and the `f64`-summed softmax from
//! `stats.rs`. Selecting this backend (`SGNN_BACKEND=scalar`) reproduces
//! historical results bit for bit; it is also the ground truth the
//! `backend_equivalence` suite compares the SIMD kernels against.
//!
//! The one deliberate change from the pre-backend code: the `av == 0.0`
//! skip in the GEMM inner loop is gone. The branch blocked vectorization
//! and mispredicts on dense activations, and `fma(b, 0.0, o) == o` for
//! every finite `b`, so removing it cannot change results on the finite
//! data these kernels see (`BENCH_gemm.json` records the measured effect).

use super::Backend;

/// The scalar reference implementation.
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn gemm_block(&self, a: &[f32], k: usize, b: &[f32], n: usize, out: &mut [f32]) {
        let ns = n.max(1);
        for (r, orow) in out.chunks_exact_mut(ns).enumerate() {
            let arow = &a[r * k..(r + 1) * k];
            for (kk, &av) in arow.iter().enumerate() {
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o = bv.mul_add(av, *o);
                }
            }
        }
    }

    fn dot(&self, x: &[f32], y: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for (&a, &b) in x.iter().zip(y) {
            acc = a.mul_add(b, acc);
        }
        acc
    }

    fn axpy(&self, alpha: f32, x: &[f32], out: &mut [f32]) {
        for (o, &xv) in out.iter_mut().zip(x) {
            *o = xv.mul_add(alpha, *o);
        }
    }

    fn scale(&self, s: f32, x: &mut [f32]) {
        x.iter_mut().for_each(|v| *v *= s);
    }

    fn add_assign(&self, a: &mut [f32], b: &[f32]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x += y;
        }
    }

    fn sub_assign(&self, a: &mut [f32], b: &[f32]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x -= y;
        }
    }

    fn hadamard(&self, a: &mut [f32], b: &[f32]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x *= y;
        }
    }

    fn relu(&self, x: &mut [f32]) {
        x.iter_mut().for_each(|v| *v = v.max(0.0));
    }

    fn relu_bwd(&self, y: &[f32], g: &mut [f32]) {
        for (gv, &yv) in g.iter_mut().zip(y) {
            if yv <= 0.0 {
                *gv = 0.0;
            }
        }
    }

    fn softmax_row(&self, row: &mut [f32]) {
        let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0f64;
        for x in row.iter_mut() {
            *x = (*x - m).exp();
            sum += *x as f64;
        }
        let inv = (1.0 / sum) as f32;
        row.iter_mut().for_each(|x| *x *= inv);
    }

    fn log_softmax_row(&self, row: &mut [f32]) {
        let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let lse = (row.iter().map(|&x| ((x - m) as f64).exp()).sum::<f64>()).ln() as f32 + m;
        row.iter_mut().for_each(|x| *x -= lse);
    }

    fn softmax_bwd_row(&self, y: &[f32], g: &mut [f32]) {
        let dot: f64 = y
            .iter()
            .zip(g.iter())
            .map(|(&yy, &gg)| yy as f64 * gg as f64)
            .sum();
        let d = dot as f32;
        for (gv, &yy) in g.iter_mut().zip(y) {
            *gv = yy * (*gv - d);
        }
    }
}
