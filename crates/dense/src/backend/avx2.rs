//! AVX2+FMA microkernels (`x86_64` only).
//!
//! Selected at runtime behind `is_x86_feature_detected!("avx2") && ("fma")`
//! — see [`super::simd_supported`]. Every `unsafe` block in this module is
//! reachable only through [`super::active`]/[`super::set_backend`], both of
//! which refuse to hand out this backend unless the CPU supports the
//! required features, so the `#[target_feature]` calls are always sound.
//!
//! # GEMM microkernel
//!
//! [`Avx2Backend::gemm_block`] is a register-blocked panel kernel:
//!
//! * B (`k × n`) is packed once per call into `NR`-column panels laid out
//!   k-major (`panel[kk][0..NR]` contiguous), so the inner loop streams the
//!   panel sequentially instead of striding `n` floats between `k` steps.
//!   The last panel is zero-padded to `NR` — `fma(a, 0.0, acc) == acc`, so
//!   padding never perturbs results. The pack buffer is thread-local and
//!   reused across calls (each pool lane packs its own chunk's view).
//! * The microkernel computes an `MR × NR` (4 × 16) output block held in 8
//!   YMM accumulators, walking `k` in ascending order with one FMA chain per
//!   output element — the same reduction order as the scalar kernel, which
//!   is what makes the SIMD GEMM bit-identical to the scalar backend.
//!   Vector lanes parallelize across *columns* (independent sums), never
//!   across `k`.
//! * Row tails (`rows % MR`) reuse the same kernel monomorphized at
//!   `MR_ = 1`; column tails (`n % NR`) go through a zero-padded stack
//!   buffer for load/store so out-of-bounds lanes are never touched.
//!
//! # Everything else
//!
//! AXPY and the elementwise ops are straight 8-lane loops with scalar
//! `mul_add` tails (lane-wise, bit-exact). Softmax vectorizes the
//! max-reduction (exact — `max` is associative and commutative) and the
//! final scale, keeping the serial `f64` sum of exponentials, so it is also
//! bit-exact. [`Avx2Backend::dot`] is the one reassociating kernel (8 lanes
//! + horizontal sum); its consumer `matmul_a_bt` is tolerance-tested.

use std::arch::x86_64::*;
use std::cell::RefCell;

use super::{Backend, ScalarBackend};

/// Columns per packed panel / microkernel tile (two YMM vectors).
const NR: usize = 16;
/// Rows per microkernel tile.
const MR: usize = 4;

/// Below this flop count the packing + dispatch overhead beats the vector
/// win; delegate to the scalar kernel (bit-identical, so the cutoff is a
/// pure performance knob).
const GEMM_SIMD_CUTOFF: usize = 1 << 10;

thread_local! {
    /// Per-thread B-panel pack buffer, grown on demand and reused.
    static PACK_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// The AVX2+FMA backend.
pub struct Avx2Backend;

impl Backend for Avx2Backend {
    fn name(&self) -> &'static str {
        "avx2fma"
    }

    fn gemm_block(&self, a: &[f32], k: usize, b: &[f32], n: usize, out: &mut [f32]) {
        let rows = out.len() / n.max(1);
        if n < 8 || k == 0 || rows * k * n < GEMM_SIMD_CUTOFF {
            ScalarBackend.gemm_block(a, k, b, n, out);
            return;
        }
        // SAFETY: this backend is only dispatched on hosts where
        // `simd_supported()` returned true (see module docs).
        unsafe { gemm_packed(a, k, b, n, rows, out) }
    }

    fn dot(&self, x: &[f32], y: &[f32]) -> f32 {
        let len = x.len().min(y.len());
        if len < 16 {
            return ScalarBackend.dot(x, y);
        }
        // SAFETY: feature-checked at selection; len bounds both slices.
        unsafe { dot_avx2(x.as_ptr(), y.as_ptr(), len) }
    }

    fn axpy(&self, alpha: f32, x: &[f32], out: &mut [f32]) {
        let len = x.len().min(out.len());
        // SAFETY: feature-checked at selection; len bounds both slices.
        unsafe { axpy_avx2(alpha, x.as_ptr(), out.as_mut_ptr(), len) }
    }

    fn scale(&self, s: f32, x: &mut [f32]) {
        // SAFETY: feature-checked at selection.
        unsafe { scale_avx2(s, x.as_mut_ptr(), x.len()) }
    }

    fn add_assign(&self, a: &mut [f32], b: &[f32]) {
        let len = a.len().min(b.len());
        // SAFETY: feature-checked at selection; len bounds both slices.
        unsafe { add_avx2(a.as_mut_ptr(), b.as_ptr(), len) }
    }

    fn sub_assign(&self, a: &mut [f32], b: &[f32]) {
        let len = a.len().min(b.len());
        // SAFETY: feature-checked at selection; len bounds both slices.
        unsafe { sub_avx2(a.as_mut_ptr(), b.as_ptr(), len) }
    }

    fn hadamard(&self, a: &mut [f32], b: &[f32]) {
        let len = a.len().min(b.len());
        // SAFETY: feature-checked at selection; len bounds both slices.
        unsafe { mul_avx2(a.as_mut_ptr(), b.as_ptr(), len) }
    }

    fn relu(&self, x: &mut [f32]) {
        // SAFETY: feature-checked at selection.
        unsafe { relu_avx2(x.as_mut_ptr(), x.len()) }
    }

    fn relu_bwd(&self, y: &[f32], g: &mut [f32]) {
        let len = y.len().min(g.len());
        // SAFETY: feature-checked at selection; len bounds both slices.
        unsafe { relu_bwd_avx2(y.as_ptr(), g.as_mut_ptr(), len) }
    }

    fn softmax_row(&self, row: &mut [f32]) {
        if row.is_empty() {
            return;
        }
        // SAFETY: feature-checked at selection; row is non-empty.
        let m = unsafe { max_avx2(row.as_ptr(), row.len()) };
        // Serial exp + f64 accumulation: identical code (and therefore
        // identical bits) to the scalar backend.
        let mut sum = 0.0f64;
        for x in row.iter_mut() {
            *x = (*x - m).exp();
            sum += *x as f64;
        }
        let inv = (1.0 / sum) as f32;
        self.scale(inv, row);
    }

    fn log_softmax_row(&self, row: &mut [f32]) {
        if row.is_empty() {
            return;
        }
        // SAFETY: feature-checked at selection; row is non-empty.
        let m = unsafe { max_avx2(row.as_ptr(), row.len()) };
        // Serial f64 log-sum-exp: identical code (and bits) to scalar.
        let lse = (row.iter().map(|&x| ((x - m) as f64).exp()).sum::<f64>()).ln() as f32 + m;
        // SAFETY: feature-checked at selection.
        unsafe { sub_scalar_avx2(lse, row.as_mut_ptr(), row.len()) }
    }

    fn softmax_bwd_row(&self, y: &[f32], g: &mut [f32]) {
        // Serial f64 dot, as in the scalar backend (bit-exact contract).
        let dot: f64 = y
            .iter()
            .zip(g.iter())
            .map(|(&yy, &gg)| yy as f64 * gg as f64)
            .sum();
        let d = dot as f32;
        let len = y.len().min(g.len());
        // SAFETY: feature-checked at selection; len bounds both slices.
        unsafe { softmax_bwd_tail(y.as_ptr(), g.as_mut_ptr(), len, d) }
    }
}

/// Packs `b` (`k × n`, row-major) into `NR`-column, k-major panels,
/// zero-padding the last panel to `NR`.
fn pack_b(b: &[f32], k: usize, n: usize, buf: &mut Vec<f32>) {
    let npanels = n.div_ceil(NR);
    buf.clear();
    buf.resize(npanels * k * NR, 0.0);
    for p in 0..npanels {
        let j0 = p * NR;
        let tw = NR.min(n - j0);
        let panel = &mut buf[p * k * NR..(p + 1) * k * NR];
        for kk in 0..k {
            let dst = &mut panel[kk * NR..kk * NR + NR];
            dst[..tw].copy_from_slice(&b[kk * n + j0..kk * n + j0 + tw]);
            if tw < NR {
                dst[tw..].fill(0.0);
            }
        }
    }
}

/// Packed-panel GEMM driver: `out += a · b` for `rows × k` by `k × n`.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available and that `a`, `b`, `out` cover
/// `rows*k`, `k*n`, and `rows*n` elements respectively.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_packed(a: &[f32], k: usize, b: &[f32], n: usize, rows: usize, out: &mut [f32]) {
    PACK_BUF.with(|cell| {
        let mut buf = cell.borrow_mut();
        pack_b(b, k, n, &mut buf);
        let npanels = n.div_ceil(NR);
        let aptr = a.as_ptr();
        let optr = out.as_mut_ptr();
        for p in 0..npanels {
            let j0 = p * NR;
            let tw = NR.min(n - j0);
            let panel = buf.as_ptr().add(p * k * NR);
            let mut r = 0;
            while r + MR <= rows {
                tile::<MR>(aptr.add(r * k), k, panel, optr.add(r * n + j0), n, tw);
                r += MR;
            }
            while r < rows {
                tile::<1>(aptr.add(r * k), k, panel, optr.add(r * n + j0), n, tw);
                r += 1;
            }
        }
    });
}

/// `MR_ × NR` register tile: `out_tile += a_rows · panel`, one FMA chain per
/// output element, `k` ascending (the bit-exactness invariant). `tw < NR`
/// routes loads/stores through a zero-padded stack buffer.
///
/// # Safety
/// Caller must ensure AVX2+FMA, `a` covers `MR_ * k` elements, `panel`
/// covers `k * NR`, and `out` covers `MR_` rows of stride `stride` with at
/// least `tw` valid columns.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn tile<const MR_: usize>(
    a: *const f32,
    k: usize,
    panel: *const f32,
    out: *mut f32,
    stride: usize,
    tw: usize,
) {
    let mut acc = [[_mm256_setzero_ps(); 2]; MR_];
    let mut tmp = [0.0f32; NR];
    for (r, accr) in acc.iter_mut().enumerate() {
        if tw == NR {
            accr[0] = _mm256_loadu_ps(out.add(r * stride));
            accr[1] = _mm256_loadu_ps(out.add(r * stride + 8));
        } else {
            tmp = [0.0; NR];
            std::ptr::copy_nonoverlapping(out.add(r * stride), tmp.as_mut_ptr(), tw);
            accr[0] = _mm256_loadu_ps(tmp.as_ptr());
            accr[1] = _mm256_loadu_ps(tmp.as_ptr().add(8));
        }
    }
    for kk in 0..k {
        let b0 = _mm256_loadu_ps(panel.add(kk * NR));
        let b1 = _mm256_loadu_ps(panel.add(kk * NR + 8));
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*a.add(r * k + kk));
            accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
            accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        if tw == NR {
            _mm256_storeu_ps(out.add(r * stride), accr[0]);
            _mm256_storeu_ps(out.add(r * stride + 8), accr[1]);
        } else {
            _mm256_storeu_ps(tmp.as_mut_ptr(), accr[0]);
            _mm256_storeu_ps(tmp.as_mut_ptr().add(8), accr[1]);
            std::ptr::copy_nonoverlapping(tmp.as_ptr(), out.add(r * stride), tw);
        }
    }
}

/// # Safety
/// AVX2+FMA available; `x` and `y` cover `len` elements.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_avx2(x: *const f32, y: *const f32, len: usize) -> f32 {
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= len {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(x.add(i)), _mm256_loadu_ps(y.add(i)), acc);
        i += 8;
    }
    // Horizontal sum (reassociates — documented tolerance kernel).
    let hi = _mm256_extractf128_ps(acc, 1);
    let lo = _mm256_castps256_ps128(acc);
    let s4 = _mm_add_ps(lo, hi);
    let s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
    let s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 1));
    let mut sum = _mm_cvtss_f32(s1);
    while i < len {
        sum = (*x.add(i)).mul_add(*y.add(i), sum);
        i += 1;
    }
    sum
}

/// # Safety
/// AVX2+FMA available; `x` and `out` cover `len` elements.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_avx2(alpha: f32, x: *const f32, out: *mut f32, len: usize) {
    let av = _mm256_set1_ps(alpha);
    let mut i = 0;
    while i + 8 <= len {
        let o = _mm256_loadu_ps(out.add(i));
        let xv = _mm256_loadu_ps(x.add(i));
        _mm256_storeu_ps(out.add(i), _mm256_fmadd_ps(xv, av, o));
        i += 8;
    }
    while i < len {
        *out.add(i) = (*x.add(i)).mul_add(alpha, *out.add(i));
        i += 1;
    }
}

/// # Safety
/// AVX2 available; `x` covers `len` elements.
#[target_feature(enable = "avx2")]
unsafe fn scale_avx2(s: f32, x: *mut f32, len: usize) {
    let sv = _mm256_set1_ps(s);
    let mut i = 0;
    while i + 8 <= len {
        _mm256_storeu_ps(x.add(i), _mm256_mul_ps(_mm256_loadu_ps(x.add(i)), sv));
        i += 8;
    }
    while i < len {
        *x.add(i) *= s;
        i += 1;
    }
}

/// `x[i] -= s` (the log-softmax normalization sweep).
///
/// # Safety
/// AVX2 available; `x` covers `len` elements.
#[target_feature(enable = "avx2")]
unsafe fn sub_scalar_avx2(s: f32, x: *mut f32, len: usize) {
    let sv = _mm256_set1_ps(s);
    let mut i = 0;
    while i + 8 <= len {
        _mm256_storeu_ps(x.add(i), _mm256_sub_ps(_mm256_loadu_ps(x.add(i)), sv));
        i += 8;
    }
    while i < len {
        *x.add(i) -= s;
        i += 1;
    }
}

/// # Safety
/// AVX2 available; `a` and `b` cover `len` elements.
#[target_feature(enable = "avx2")]
unsafe fn add_avx2(a: *mut f32, b: *const f32, len: usize) {
    let mut i = 0;
    while i + 8 <= len {
        let v = _mm256_add_ps(_mm256_loadu_ps(a.add(i)), _mm256_loadu_ps(b.add(i)));
        _mm256_storeu_ps(a.add(i), v);
        i += 8;
    }
    while i < len {
        *a.add(i) += *b.add(i);
        i += 1;
    }
}

/// # Safety
/// AVX2 available; `a` and `b` cover `len` elements.
#[target_feature(enable = "avx2")]
unsafe fn sub_avx2(a: *mut f32, b: *const f32, len: usize) {
    let mut i = 0;
    while i + 8 <= len {
        let v = _mm256_sub_ps(_mm256_loadu_ps(a.add(i)), _mm256_loadu_ps(b.add(i)));
        _mm256_storeu_ps(a.add(i), v);
        i += 8;
    }
    while i < len {
        *a.add(i) -= *b.add(i);
        i += 1;
    }
}

/// # Safety
/// AVX2 available; `a` and `b` cover `len` elements.
#[target_feature(enable = "avx2")]
unsafe fn mul_avx2(a: *mut f32, b: *const f32, len: usize) {
    let mut i = 0;
    while i + 8 <= len {
        let v = _mm256_mul_ps(_mm256_loadu_ps(a.add(i)), _mm256_loadu_ps(b.add(i)));
        _mm256_storeu_ps(a.add(i), v);
        i += 8;
    }
    while i < len {
        *a.add(i) *= *b.add(i);
        i += 1;
    }
}

/// # Safety
/// AVX2 available; `x` covers `len` elements.
#[target_feature(enable = "avx2")]
unsafe fn relu_avx2(x: *mut f32, len: usize) {
    // `maxps(x, 0)` matches `f32::max(x, 0.0)` lane-wise: NaN inputs and
    // `-0.0` both produce `+0.0` under either form.
    let zero = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= len {
        _mm256_storeu_ps(x.add(i), _mm256_max_ps(_mm256_loadu_ps(x.add(i)), zero));
        i += 8;
    }
    while i < len {
        *x.add(i) = (*x.add(i)).max(0.0);
        i += 1;
    }
}

/// # Safety
/// AVX2 available; `y` and `g` cover `len` elements.
#[target_feature(enable = "avx2")]
unsafe fn relu_bwd_avx2(y: *const f32, g: *mut f32, len: usize) {
    // mask = (y <= 0), ordered-quiet so NaN y keeps g — exactly the scalar
    // `if yv <= 0.0 { g = 0 }` comparison semantics.
    let zero = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= len {
        let mask = _mm256_cmp_ps::<_CMP_LE_OQ>(_mm256_loadu_ps(y.add(i)), zero);
        let gv = _mm256_andnot_ps(mask, _mm256_loadu_ps(g.add(i)));
        _mm256_storeu_ps(g.add(i), gv);
        i += 8;
    }
    while i < len {
        if *y.add(i) <= 0.0 {
            *g.add(i) = 0.0;
        }
        i += 1;
    }
}

/// Max-reduction of `len >= 1` floats. `max` is associative and commutative,
/// so lane-parallel reduction is exact for finite data.
///
/// # Safety
/// AVX2 available; `x` covers `len` elements with `len >= 1`.
#[target_feature(enable = "avx2")]
unsafe fn max_avx2(x: *const f32, len: usize) -> f32 {
    let mut i = 0;
    let mut m = f32::NEG_INFINITY;
    if len >= 8 {
        let mut mv = _mm256_loadu_ps(x);
        i = 8;
        while i + 8 <= len {
            mv = _mm256_max_ps(mv, _mm256_loadu_ps(x.add(i)));
            i += 8;
        }
        let hi = _mm256_extractf128_ps(mv, 1);
        let lo = _mm256_castps256_ps128(mv);
        let m4 = _mm_max_ps(lo, hi);
        let m2 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
        let m1 = _mm_max_ss(m2, _mm_shuffle_ps(m2, m2, 1));
        m = _mm_cvtss_f32(m1);
    }
    while i < len {
        m = m.max(*x.add(i));
        i += 1;
    }
    m
}

/// `g[i] = y[i] * (g[i] - d)` — the elementwise half of softmax backward.
///
/// # Safety
/// AVX2 available; `y` and `g` cover `len` elements.
#[target_feature(enable = "avx2")]
unsafe fn softmax_bwd_tail(y: *const f32, g: *mut f32, len: usize, d: f32) {
    let dv = _mm256_set1_ps(d);
    let mut i = 0;
    while i + 8 <= len {
        let gv = _mm256_sub_ps(_mm256_loadu_ps(g.add(i)), dv);
        _mm256_storeu_ps(g.add(i), _mm256_mul_ps(_mm256_loadu_ps(y.add(i)), gv));
        i += 8;
    }
    while i < len {
        *g.add(i) = *y.add(i) * (*g.add(i) - d);
        i += 1;
    }
}
