//! Dense matrix multiplication kernels.
//!
//! The transformation stage of every model reduces to `H · W` (activations ×
//! weights) plus the two transposed products needed by backprop. Output rows
//! are distributed across the persistent worker pool (see [`crate::runtime`])
//! and each worker's chunk runs through the active compute backend
//! ([`crate::backend`]): a register-blocked AVX2+FMA panel kernel when the
//! host supports it, the portable k-outer/j-inner axpy loop otherwise.
//!
//! The historical `av == 0.0` skip in the inner loop is gone with the
//! backend refactor: activations are dense after the first layer, the branch
//! blocked vectorization, and `fma(b, 0.0, o) == o` for finite `b`, so its
//! removal is invisible in results (`BENCH_gemm.json` records the measured
//! kernel effect).

use crate::backend;
use crate::mat::DMat;
use crate::runtime::{num_threads, run_chunks, run_map};
use sgnn_obs as obs;

/// Multiply-accumulate count across all three kernels (2 flops each); the
/// transformation-side twin of `spmm.flops`.
static MATMUL_FLOPS: obs::Counter = obs::Counter::new("matmul.flops");

/// Per-chunk GEMM microkernel time: one sample per row-chunk a lane runs
/// through the backend, so the spread exposes chunk imbalance and packing
/// stalls rather than just the whole-matmul wall time.
static GEMM_BLOCK_NS: obs::Histogram = obs::Histogram::new("gemm.block_ns");

/// `A (m×k) · B (k×n) -> (m×n)`.
pub fn matmul(a: &DMat, b: &DMat) -> DMat {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul inner dimension mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let _sp = obs::span!("matmul", m = m, k = k, n = n);
    MATMUL_FLOPS.add(2 * (m * k * n) as u64);
    let mut out = DMat::zeros(m, n);
    let bdat = b.data();
    let adat = a.data();
    let be = backend::for_gemm();
    run_chunks(out.data_mut(), m, n.max(1), |first, chunk| {
        let t = obs::enabled().then(std::time::Instant::now);
        let rows = chunk.len() / n.max(1);
        let ablock = &adat[first * k..(first + rows) * k];
        be.gemm_block(ablock, k, bdat, n, chunk);
        if let Some(t) = t {
            GEMM_BLOCK_NS.record_duration(t.elapsed());
        }
    });
    out
}

/// Accumulates `Aᵀ·B` over the given `k`-range into a row-major `m × n`
/// buffer (the shared inner kernel of [`matmul_at_b`]).
fn at_b_accumulate(
    be: &dyn backend::Backend,
    a: &DMat,
    b: &DMat,
    ks: std::ops::Range<usize>,
    out: &mut [f32],
    n: usize,
) {
    for kk in ks {
        let arow = a.row(kk);
        let brow = b.row(kk);
        for (r, &av) in arow.iter().enumerate() {
            be.axpy(av, brow, &mut out[r * n..(r + 1) * n]);
        }
    }
}

/// `Aᵀ (k×m)ᵀ · B (k×n) -> (m×n)`, i.e. `matmul(a.transpose(), b)` without
/// materializing the transpose. Used for weight gradients `Xᵀ·dY`.
///
/// The output is `m × n` (feature × feature, small) but the reduction runs
/// over `k` (nodes, large), so the parallel path splits `k` across pool
/// lanes into per-task partial accumulators and sums them in fixed chunk
/// order. That reduction order is deterministic for a given pool width but
/// regroups the serial `k`-order sum, so results can differ from the serial
/// kernel in the last float bits — weight gradients are tolerance-checked,
/// never byte-compared.
pub fn matmul_at_b(a: &DMat, b: &DMat) -> DMat {
    assert_eq!(a.rows(), b.rows(), "matmul_at_b leading dimension mismatch");
    let (k, m) = a.shape();
    let n = b.cols();
    let _sp = obs::span!("matmul", m = m, k = k, n = n);
    MATMUL_FLOPS.add(2 * (m * k * n) as u64);
    let mut out = DMat::zeros(m, n);
    let be = backend::for_gemm();
    let chunks = num_threads().min(k.max(1));
    if chunks <= 1 || m * k * n < 1 << 14 {
        at_b_accumulate(be, a, b, 0..k, out.data_mut(), n);
        return out;
    }
    let per = k.div_ceil(chunks);
    let partials = run_map(chunks, |i| {
        let ks = i * per..((i + 1) * per).min(k);
        let mut part = vec![0.0f32; m * n];
        at_b_accumulate(be, a, b, ks, &mut part, n);
        part
    });
    let odat = out.data_mut();
    for part in &partials {
        for (o, &p) in odat.iter_mut().zip(part) {
            *o += p;
        }
    }
    out
}

/// `A (m×k) · Bᵀ (n×k)ᵀ -> (m×n)` without materializing the transpose.
/// Used for input gradients `dY·Wᵀ`.
///
/// Each output element is a [`backend::Backend::dot`]; the SIMD backend
/// reduces the lanes horizontally, which reassociates the sum, so this
/// product is tolerance-checked across backends (like the parallel
/// [`matmul_at_b`] reduction), never byte-compared.
pub fn matmul_a_bt(a: &DMat, b: &DMat) -> DMat {
    assert_eq!(a.cols(), b.cols(), "matmul_a_bt inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.rows();
    let _sp = obs::span!("matmul", m = m, k = k, n = n);
    MATMUL_FLOPS.add(2 * (m * k * n) as u64);
    let mut out = DMat::zeros(m, n);
    let adat = a.data();
    let bdat = b.data();
    let be = backend::for_gemm();
    run_chunks(out.data_mut(), m, n.max(1), |first, chunk| {
        for (local_r, orow) in chunk.chunks_exact_mut(n.max(1)).enumerate() {
            let r = first + local_r;
            let arow = &adat[r * k..(r + 1) * k];
            for (c, o) in orow.iter_mut().enumerate() {
                *o = be.dot(arow, &bdat[c * k..(c + 1) * k]);
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &DMat, b: &DMat) -> DMat {
        let mut out = DMat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    fn approx_eq(a: &DMat, b: &DMat, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let a = DMat::from_fn(5, 7, |r, c| ((r * 7 + c) % 5) as f32 - 2.0);
        let b = DMat::from_fn(7, 3, |r, c| ((r + 2 * c) % 3) as f32 - 1.0);
        approx_eq(&matmul(&a, &b), &naive(&a, &b), 1e-5);
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = DMat::from_fn(6, 4, |r, c| (r as f32 - c as f32) * 0.5);
        let b = DMat::from_fn(6, 3, |r, c| (r * c) as f32 * 0.1);
        approx_eq(&matmul_at_b(&a, &b), &naive(&a.transpose(), &b), 1e-4);
        let c = DMat::from_fn(5, 4, |r, c| (r + c) as f32 * 0.2);
        approx_eq(&matmul_a_bt(&a, &c), &naive(&a, &c.transpose()), 1e-4);
    }

    #[test]
    fn identity_is_neutral() {
        let a = DMat::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        approx_eq(&matmul(&a, &DMat::eye(4)), &a, 0.0);
        approx_eq(&matmul(&DMat::eye(4), &a), &a, 0.0);
    }

    #[test]
    fn at_b_parallel_path_matches_naive_within_tolerance() {
        // 2000·16·32 ≈ 1M flops clears the parallel cutoff; values are
        // mixed-sign so cancellation would expose an incorrect reduction.
        let a = DMat::from_fn(2000, 16, |r, c| ((r * 13 + c * 7) % 11) as f32 * 0.3 - 1.5);
        let b = DMat::from_fn(2000, 32, |r, c| ((r * 3 + c * 5) % 9) as f32 * 0.25 - 1.0);
        let got = matmul_at_b(&a, &b);
        approx_eq(&got, &naive(&a.transpose(), &b), 1e-1);
        // Deterministic for a fixed pool width: repeated calls agree exactly.
        assert_eq!(got, matmul_at_b(&a, &b));
    }

    #[test]
    fn large_parallel_path_matches_naive() {
        let a = DMat::from_fn(300, 64, |r, c| ((r * 31 + c * 17) % 13) as f32 * 0.1 - 0.5);
        let b = DMat::from_fn(64, 48, |r, c| ((r * 5 + c * 3) % 7) as f32 * 0.2 - 0.6);
        approx_eq(&matmul(&a, &b), &naive(&a, &b), 1e-3);
    }
}
