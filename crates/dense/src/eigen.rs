//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The paper's framework explicitly avoids eigendecomposition at graph scale
//! (Section 2.1), but the *analysis* side of the benchmark needs exact small
//! spectra: validating Chebyshev-synthesized filter targets, plotting spectral
//! energy, and testing frequency responses against `U g(Λ) Uᵀ x`. The cyclic
//! Jacobi method is simple, numerically robust for symmetric matrices, and
//! entirely adequate for the `n ≤ ~1000` matrices used in those analyses.

use crate::mat::DMat;

/// Result of a symmetric eigendecomposition `A = V · diag(λ) · Vᵀ`.
pub struct SymEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Column `j` of `vectors` is the eigenvector for `values[j]`.
    pub vectors: DMat,
}

/// Decomposes a dense symmetric matrix with cyclic Jacobi rotations.
///
/// # Panics
/// Panics if `a` is not square. Symmetry is assumed; only the upper triangle
/// drives the rotations but both halves are updated, so mild asymmetry is
/// averaged away.
pub fn sym_eigen(a: &DMat) -> SymEigen {
    let n = a.rows();
    assert_eq!(n, a.cols(), "sym_eigen requires a square matrix");
    // Work in f64: Jacobi's accumulated rotations are precision-sensitive.
    let mut m: Vec<f64> = a.data().iter().map(|&x| x as f64).collect();
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let off = |m: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += m[i * n + j] * m[i * n + j];
            }
        }
        s
    };

    let max_sweeps = 100;
    let tol = 1e-22 * (1.0 + off(&m));
    for _ in 0..max_sweeps {
        if off(&m) <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p,q,θ) on both sides: m = Gᵀ m G.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort eigenpairs ascending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[i * n + i].partial_cmp(&m[j * n + j]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| m[i * n + i]).collect();
    let mut vectors = DMat::zeros(n, n);
    for (col, &src) in order.iter().enumerate() {
        for row in 0..n {
            vectors.set(row, col, v[row * n + src] as f32);
        }
    }
    SymEigen { values, vectors }
}

impl SymEigen {
    /// Applies the exact spectral filter `U g(Λ) Uᵀ · x` (Eq. (2) of the paper).
    ///
    /// `x` is an `n × F` signal matrix; `g` is the scalar frequency response.
    pub fn apply_filter(&self, g: impl Fn(f64) -> f64, x: &DMat) -> DMat {
        let n = self.values.len();
        assert_eq!(x.rows(), n, "signal length must match spectrum size");
        // y1 = Uᵀ x
        let y1 = crate::matmul::matmul_at_b(&self.vectors, x);
        // y2 = g(Λ) y1
        let mut y2 = y1;
        for (i, &lam) in self.values.iter().enumerate() {
            let gl = g(lam) as f32;
            y2.row_mut(i).iter_mut().for_each(|v| *v *= gl);
        }
        // x* = U y2
        crate::matmul::matmul(&self.vectors, &y2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matmul;

    fn reconstruct(e: &SymEigen) -> DMat {
        let n = e.values.len();
        let mut lam = DMat::zeros(n, n);
        for i in 0..n {
            lam.set(i, i, e.values[i] as f32);
        }
        matmul(&matmul(&e.vectors, &lam), &e.vectors.transpose())
    }

    #[test]
    fn diagonal_matrix_recovers_entries() {
        let mut a = DMat::zeros(3, 3);
        a.set(0, 0, 3.0);
        a.set(1, 1, -1.0);
        a.set(2, 2, 2.0);
        let e = sym_eigen(&a);
        let got: Vec<f64> = e.values.clone();
        assert!((got[0] + 1.0).abs() < 1e-8);
        assert!((got[1] - 2.0).abs() < 1e-8);
        assert!((got[2] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn reconstruction_matches_input() {
        // A symmetric matrix with known structure.
        let a = DMat::from_fn(6, 6, |r, c| {
            let (r, c) = (r.min(c), r.max(c));
            ((r * 6 + c) % 7) as f32 * 0.3 - 0.8
        });
        let e = sym_eigen(&a);
        let r = reconstruct(&e);
        for (x, y) in a.data().iter().zip(r.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = DMat::from_fn(5, 5, |r, c| if r == c { 2.0 } else { -0.3 });
        let e = sym_eigen(&a);
        let gram = matmul(&e.vectors.transpose(), &e.vectors);
        for i in 0..5 {
            for j in 0..5 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((gram.get(i, j) - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn identity_filter_is_a_no_op() {
        let a = DMat::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.1 });
        let e = sym_eigen(&a);
        let x = DMat::from_fn(4, 2, |r, c| (r + c) as f32);
        let y = e.apply_filter(|_| 1.0, &x);
        for (u, v) in x.data().iter().zip(y.data()) {
            assert!((u - v).abs() < 1e-4);
        }
    }

    #[test]
    fn linear_filter_matches_matrix_application() {
        // g(λ) = λ  ⇒  filter == multiplication by A itself.
        let a = DMat::from_fn(5, 5, |r, c| {
            let (r, c) = (r.min(c), r.max(c));
            if r == c {
                1.5
            } else {
                0.2 * ((r + c) % 3) as f32
            }
        });
        let e = sym_eigen(&a);
        let x = DMat::from_fn(5, 3, |r, c| (r as f32 - c as f32) * 0.7);
        let via_spec = e.apply_filter(|l| l, &x);
        let direct = matmul(&a, &x);
        for (u, v) in via_spec.data().iter().zip(direct.data()) {
            assert!((u - v).abs() < 1e-4, "{u} vs {v}");
        }
    }
}
