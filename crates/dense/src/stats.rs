//! Small numeric helpers shared across the workspace.

/// Index of the maximum entry (first on ties).
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    let mut bv = f32::NEG_INFINITY;
    for (i, &x) in xs.iter().enumerate() {
        if x > bv {
            bv = x;
            best = i;
        }
    }
    best
}

/// Numerically stable in-place softmax.
///
/// Dispatches through the active [`crate::backend`]; both backends keep the
/// serial `f64` sum of exponentials, so the result is bit-identical across
/// them (see the backend module docs).
pub fn softmax_inplace(xs: &mut [f32]) {
    crate::backend::for_softmax().softmax_row(xs);
}

/// Numerically stable in-place log-softmax. Backend-dispatched and
/// bit-identical across backends, like [`softmax_inplace`].
pub fn log_softmax_inplace(xs: &mut [f32]) {
    crate::backend::for_softmax().log_softmax_row(xs);
}

/// Mean of a slice, `f64` accumulation.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (Bessel-corrected; 0 for fewer than 2 samples).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_picks_first_max() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut xs = [1.0, 2.0, 3.0];
        softmax_inplace(&mut xs);
        let s: f32 = xs.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let mut a = [0.5f32, -1.0, 2.0, 0.0];
        let mut b = a;
        softmax_inplace(&mut a);
        log_softmax_inplace(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.ln() - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_survives_large_inputs() {
        let mut xs = [1000.0f32, 1001.0, 999.0];
        softmax_inplace(&mut xs);
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn moments() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((stddev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(stddev(&[5.0]), 0.0);
    }

    #[test]
    fn sigmoid_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(100.0) <= 1.0);
    }
}
