//! Pool-lane tracing stress: every worker lane hammers spans, counters,
//! and histograms while a separate thread drains the per-thread rings
//! concurrently. Verifies the profiler's accounting under real pool
//! contention — span closes plus the `obs.dropped` counter must equal the
//! number of closes attempted, the dispatch-latency histogram must see
//! every dispatch, and no shared-lock serialization is reintroduced on the
//! hot path (the drain thread holding the collector lock must not stall
//! the lanes; the test would time out if it did).
//!
//! Dedicated test binary: obs state is process-global.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use sgnn_dense::runtime;
use sgnn_obs as obs;

static TASKS_DONE: obs::Counter = obs::Counter::new("obs_stress.tasks");
static TASK_NS: obs::Histogram = obs::Histogram::new("obs_stress.task_ns");

#[test]
fn pool_lanes_trace_under_concurrent_drain() {
    obs::enable_aggregation();
    obs::reset();
    runtime::set_threads(6);

    const DISPATCHES: usize = 40;
    const TASKS: usize = 128;

    let stop = Arc::new(AtomicBool::new(false));
    let drains = Arc::new(AtomicU64::new(0));
    let drainer = {
        let stop = stop.clone();
        let drains = drains.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                obs::collect();
                drains.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            }
        })
    };

    for d in 0..DISPATCHES {
        runtime::run_indexed(TASKS, |i| {
            let _sp = obs::span!("obs_stress.task", dispatch = d, idx = i);
            let t = std::time::Instant::now();
            std::hint::black_box((i.wrapping_mul(i + d)) % 97);
            TASK_NS.record_duration(t.elapsed());
            TASKS_DONE.incr();
        });
    }
    runtime::set_threads(0);
    stop.store(true, Ordering::Relaxed);
    drainer.join().unwrap();

    let snap = obs::snapshot();
    let attempted = (DISPATCHES * TASKS) as u64;

    // Every task ran (counters are not subject to ring capacity).
    assert_eq!(snap.counter("obs_stress.tasks"), Some(attempted));

    // Span closes are never lost silently: recorded + dropped == attempted.
    let recorded = snap.span("obs_stress.task").map_or(0, |s| s.count);
    assert_eq!(recorded + snap.dropped, attempted, "unaccounted span loss");
    // With the concurrent drain plus watermark drains, the rings should
    // essentially never fill on this volume.
    assert!(
        snap.dropped < attempted / 10,
        "excessive drops ({}) under concurrent drain",
        snap.dropped
    );
    assert!(drains.load(Ordering::Relaxed) > 0, "drainer never ran");

    // The per-task histogram saw every sample, and its quantiles are sane.
    let h = snap.hist("obs_stress.task_ns").expect("task histogram");
    assert_eq!(h.count, attempted);
    assert!(h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max);

    // Dispatch latency is histogrammed per dispatch (at least the explicit
    // parallel ones; small-n dispatches may inline serially and skip it).
    let d = snap.hist("pool.dispatch_ns").expect("dispatch histogram");
    assert!(
        d.count >= DISPATCHES as u64,
        "dispatch_ns saw {} < {DISPATCHES} dispatches",
        d.count
    );
    assert!(d.max >= d.p50);
}
