//! Spans and counters recorded from inside pool workers must aggregate
//! deterministically (dedicated test binary: obs state is process-global).

use std::sync::{Mutex, MutexGuard};

use sgnn_dense::runtime;
use sgnn_obs as obs;

/// Both tests mutate the process-global registries; serialize them.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::enable_aggregation();
    obs::reset();
    guard
}

#[test]
fn pool_worker_spans_aggregate_deterministically() {
    let _g = lock();
    runtime::set_threads(5);

    runtime::run_indexed(64, |i| {
        let _sp = obs::span!("obs_pool.task", idx = i);
        std::hint::black_box(i.wrapping_mul(i));
    });
    runtime::set_threads(0);

    let snap = obs::snapshot();
    let stat = snap.span("obs_pool.task").expect("span recorded");
    assert_eq!(stat.count, 64, "every task closes exactly one span");
    assert!(stat.total_s >= 0.0 && stat.max_s <= stat.total_s + 1e-12);
    assert_eq!(snap.counter("pool.dispatches"), Some(1));
    assert_eq!(snap.counter("pool.tasks"), Some(64));
    // Lane time covers at least the busy time (lanes also park/steal-idle).
    let busy = snap.counter("pool.busy_ns").unwrap_or(0);
    let lane = snap.counter("pool.lane_ns").unwrap_or(0);
    assert!(lane >= busy, "lane {lane} must bound busy {busy}");
    assert!(lane > 0, "a real dispatch accumulates lane time");
}

#[test]
fn nested_and_serial_fallbacks_are_counted_separately() {
    let _g = lock();
    runtime::set_threads(4);
    // Nested run_indexed inside a pool task runs inline and is counted as
    // such; the span from inside the nested task still aggregates.
    runtime::run_indexed(16, |_| {
        runtime::run_indexed(4, |j| {
            let _sp = obs::span!("obs_pool.nested", idx = j);
        });
    });
    runtime::set_threads(1);
    runtime::run_indexed(4, |_| {});
    runtime::set_threads(0);

    let snap = obs::snapshot();
    assert_eq!(snap.span("obs_pool.nested").unwrap().count, 64);
    assert_eq!(snap.counter("pool.nested_inline"), Some(16));
    assert_eq!(snap.counter("pool.serial_inline"), Some(1));
}
