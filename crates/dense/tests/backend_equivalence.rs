//! Backend-equivalence suite: the SIMD kernels against the scalar reference.
//!
//! The backend contract (see `sgnn_dense::backend`) splits the kernel
//! surface in two:
//!
//! * **bit-exact** — GEMM, AXPY, the elementwise ops, ReLU fwd/bwd, and
//!   softmax fwd/bwd preserve the scalar reduction order, so the SIMD
//!   results are compared with `to_bits` on random shapes, including ragged
//!   widths (`n % 16 ≠ 0`) that exercise the zero-padded panel tails;
//! * **tolerance** — `dot` (and therefore `matmul_a_bt`) reassociates the
//!   FMA chain across lanes and is checked against an `f64` reference, the
//!   same way the parallel `matmul_at_b` reduction is tested.
//!
//! On hosts without AVX2+FMA, `backend::simd()` is `None` and the kernel
//! comparisons reduce to scalar-vs-scalar (trivially green); the forced
//! `scalar` selection test at the bottom runs everywhere, including AVX2
//! hosts, pinning the fallback path.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;
use sgnn_dense::backend::{self, Backend, BackendKind};
use sgnn_dense::{matmul, DMat};

/// `set_backend` mutates a process-global; the whole-operator tests
/// serialize on this lock and restore the default even across panics.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

struct Pinned(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for Pinned {
    fn drop(&mut self) {
        backend::set_backend(None);
    }
}

fn pin(kind: BackendKind) -> Pinned {
    let guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    backend::set_backend(Some(kind));
    Pinned(guard)
}

/// Deterministic mixed-sign fill (same generator as the runtime suite).
fn filled(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let mut z = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            ((z >> 40) as f32) * 1e-5 - 80.0
        })
        .collect()
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} diverged: {x} vs {y}"
        );
    }
}

/// Scalar and (when present) SIMD backend; the second entry is the scalar
/// backend again on non-AVX2 hosts, keeping every test runnable everywhere.
fn pair() -> (&'static dyn Backend, &'static dyn Backend) {
    (
        backend::scalar(),
        backend::simd().unwrap_or(backend::scalar()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The panel GEMM keeps one k-ascending FMA chain per output element,
    /// so it must match the scalar kernel bit for bit — including ragged
    /// column counts that exercise the zero-padded tail panel and row
    /// counts that exercise the MR=1 tail kernel.
    #[test]
    fn gemm_block_is_bit_identical(
        m in 1usize..33,
        k in 1usize..40,
        n in 1usize..70,
        seed in 0u64..1_000,
    ) {
        let (sc, sd) = pair();
        let a = filled(m * k, seed);
        let b = filled(k * n, seed ^ 0xABCD);
        // Accumulate into a dirty (non-zero) output: `out +=`, not `out =`.
        let base = filled(m * n, seed ^ 0x77);
        let mut want = base.clone();
        sc.gemm_block(&a, k, &b, n, &mut want);
        let mut got = base;
        sd.gemm_block(&a, k, &b, n, &mut got);
        assert_bits_eq(&want, &got, "gemm_block");
    }

    /// Row-AXPY (the SpMM inner loop) is lane-wise FMA: bit-exact.
    #[test]
    fn axpy_is_bit_identical(
        n in 1usize..300,
        alpha in -4.0f32..4.0,
        seed in 0u64..1_000,
    ) {
        let (sc, sd) = pair();
        let x = filled(n, seed);
        let base = filled(n, seed ^ 0x3333);
        let mut want = base.clone();
        sc.axpy(alpha, &x, &mut want);
        let mut got = base;
        sd.axpy(alpha, &x, &mut got);
        assert_bits_eq(&want, &got, "axpy");
    }

    /// Scale / add / sub / hadamard / relu fwd+bwd are all lane-wise:
    /// bit-exact at every ragged length.
    #[test]
    fn elementwise_ops_are_bit_identical(
        n in 1usize..300,
        s in -3.0f32..3.0,
        seed in 0u64..1_000,
    ) {
        let (sc, sd) = pair();
        let a = filled(n, seed);
        let b = filled(n, seed ^ 0x5555);

        let run = |be: &dyn Backend| {
            let mut scaled = a.clone();
            be.scale(s, &mut scaled);
            let mut added = a.clone();
            be.add_assign(&mut added, &b);
            let mut subbed = a.clone();
            be.sub_assign(&mut subbed, &b);
            let mut had = a.clone();
            be.hadamard(&mut had, &b);
            let mut rl = a.clone();
            be.relu(&mut rl);
            let mut rg = b.clone();
            be.relu_bwd(&a, &mut rg);
            (scaled, added, subbed, had, rl, rg)
        };
        let want = run(sc);
        let got = run(sd);
        assert_bits_eq(&want.0, &got.0, "scale");
        assert_bits_eq(&want.1, &got.1, "add_assign");
        assert_bits_eq(&want.2, &got.2, "sub_assign");
        assert_bits_eq(&want.3, &got.3, "hadamard");
        assert_bits_eq(&want.4, &got.4, "relu");
        assert_bits_eq(&want.5, &got.5, "relu_bwd");
    }

    /// Softmax forward and backward keep the serial f64 reductions; only
    /// the max (associative) and the elementwise tails vectorize: bit-exact.
    #[test]
    fn softmax_fwd_bwd_are_bit_identical(
        n in 1usize..200,
        seed in 0u64..1_000,
    ) {
        let (sc, sd) = pair();
        // Softmax-scaled inputs (logit range) rather than the ±80 fill.
        let logits: Vec<f32> = filled(n, seed).iter().map(|v| v * 0.1).collect();
        let grad: Vec<f32> = filled(n, seed ^ 0x9999).iter().map(|v| v * 0.05).collect();

        let mut want = logits.clone();
        sc.softmax_row(&mut want);
        let mut got = logits.clone();
        sd.softmax_row(&mut got);
        assert_bits_eq(&want, &got, "softmax_row");

        let mut gwant = grad.clone();
        sc.softmax_bwd_row(&want, &mut gwant);
        let mut ggot = grad;
        sd.softmax_bwd_row(&got, &mut ggot);
        assert_bits_eq(&gwant, &ggot, "softmax_bwd_row");

        let mut lwant = logits.clone();
        sc.log_softmax_row(&mut lwant);
        let mut lgot = logits;
        sd.log_softmax_row(&mut lgot);
        assert_bits_eq(&lwant, &lgot, "log_softmax_row");
    }

    /// `dot` reassociates under SIMD (horizontal lane reduction), so it is
    /// tolerance-checked against an f64 reference — the documented
    /// exception to the bit-exact contract.
    #[test]
    fn dot_matches_f64_reference_within_tolerance(
        n in 1usize..400,
        seed in 0u64..1_000,
    ) {
        let (sc, sd) = pair();
        let x: Vec<f32> = filled(n, seed).iter().map(|v| v * 0.01).collect();
        let y: Vec<f32> = filled(n, seed ^ 0x1212).iter().map(|v| v * 0.01).collect();
        let reference: f64 = x.iter().zip(&y).map(|(&a, &b)| a as f64 * b as f64).sum();
        let tol = 1e-4 * (1.0 + reference.abs());
        prop_assert!((sc.dot(&x, &y) as f64 - reference).abs() <= tol);
        prop_assert!((sd.dot(&x, &y) as f64 - reference).abs() <= tol);
    }
}

/// ReLU edge semantics must agree across backends on the values where IEEE
/// gives implementations room: NaN inputs (forward clamps to the `f32::max`
/// result, backward keeps the gradient) and signed zeros.
#[test]
fn relu_edge_semantics_agree() {
    let (sc, sd) = pair();
    let edge = [
        f32::NAN,
        -0.0,
        0.0,
        -1.5,
        1.5,
        f32::INFINITY,
        f32::NEG_INFINITY,
        -0.0,
    ];

    let mut want = edge;
    sc.relu(&mut want);
    let mut got = edge;
    sd.relu(&mut got);
    assert_bits_eq(&want, &got, "relu edge values");

    let grad = [1.0f32; 8];
    let mut gwant = grad;
    sc.relu_bwd(&edge, &mut gwant);
    let mut ggot = grad;
    sd.relu_bwd(&edge, &mut ggot);
    assert_bits_eq(&gwant, &ggot, "relu_bwd edge values");
}

/// Whole-operator check: `matmul` through the public API produces the same
/// bits under both selections (the worker-pool chunking composes with the
/// backend kernels without perturbing anything).
#[test]
fn matmul_is_bit_identical_across_selections() {
    let a = DMat::from_vec(37, 19, filled(37 * 19, 1));
    let b = DMat::from_vec(19, 53, filled(19 * 53, 2));
    let want = {
        let _p = pin(BackendKind::Scalar);
        matmul::matmul(&a, &b)
    };
    let got = {
        let _p = pin(BackendKind::Simd);
        matmul::matmul(&a, &b)
    };
    assert_bits_eq(want.data(), got.data(), "matmul across selections");
}

/// `matmul_a_bt` is the tolerance-class product: compare selections against
/// an f64 reference rather than bitwise.
#[test]
fn matmul_a_bt_matches_across_selections_within_tolerance() {
    let a = DMat::from_vec(
        23,
        40,
        filled(23 * 40, 3).iter().map(|v| v * 0.01).collect(),
    );
    let b = DMat::from_vec(
        31,
        40,
        filled(31 * 40, 4).iter().map(|v| v * 0.01).collect(),
    );
    let mut reference = DMat::zeros(23, 31);
    for r in 0..23 {
        for c in 0..31 {
            let d: f64 = a
                .row(r)
                .iter()
                .zip(b.row(c))
                .map(|(&x, &y)| x as f64 * y as f64)
                .sum();
            reference.set(r, c, d as f32);
        }
    }
    for kind in [BackendKind::Scalar, BackendKind::Simd] {
        let _p = pin(kind);
        let got = matmul::matmul_a_bt(&a, &b);
        for (g, w) in got.data().iter().zip(reference.data()) {
            assert!(
                (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
                "a_bt under {kind:?}: {g} vs {w}"
            );
        }
    }
}

/// The forced-`scalar` fallback must engage even on AVX2 hosts: selection
/// reports the scalar backend and whole operators run its kernels.
#[test]
fn forced_scalar_selection_wins_on_any_host() {
    let _p = pin(BackendKind::Scalar);
    assert_eq!(backend::selected_kind(), BackendKind::Scalar);
    assert_eq!(backend::active().name(), "scalar");
    // A matmul under the forced selection matches the scalar kernel run
    // directly — the dispatch layer really routed to scalar.
    let a = DMat::from_vec(9, 24, filled(9 * 24, 7));
    let b = DMat::from_vec(24, 33, filled(24 * 33, 8));
    let got = matmul::matmul(&a, &b);
    let mut want = vec![0.0f32; 9 * 33];
    backend::scalar().gemm_block(a.data(), 24, b.data(), 33, &mut want);
    assert_bits_eq(got.data(), &want, "forced scalar matmul");
}
