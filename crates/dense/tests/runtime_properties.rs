//! Property tests for the worker-pool runtime: pooled execution must be
//! **bit-identical** to the serial fallback for any shape and any thread
//! count, because the benchmark's reproducibility story (seeded runs,
//! regression-tested accuracies) depends on parallelism never changing
//! results.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;
use sgnn_dense::runtime::{run_chunks, run_indexed, run_map, set_threads};

/// `set_threads` mutates a process-global; tests in this binary serialize on
/// this lock and restore the default even when an assertion panics.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

struct Pinned(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for Pinned {
    fn drop(&mut self) {
        set_threads(0);
    }
}

fn pin(threads: usize) -> Pinned {
    let guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_threads(threads);
    Pinned(guard)
}

/// Deterministic pseudo-random fill so every case works on distinct data.
fn filled(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let mut z = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            ((z >> 40) as f32) * 1e-5 - 80.0
        })
        .collect()
}

/// A per-index f32 task whose result depends on both index and seed.
fn task_value(i: usize, seed: u64) -> f32 {
    let x = ((i as u64 ^ seed) % 10_000) as f32 * 1e-3;
    x.sin().mul_add(3.0, x.sqrt())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `run_chunks` under any pool width writes the exact bits the serial
    /// fallback writes, across shapes straddling the parallel cutoff.
    #[test]
    fn pooled_run_chunks_is_bit_identical_to_serial(
        rows in 1usize..400,
        cols in 1usize..80,
        threads in 1usize..9,
        seed in 0u64..1_000,
    ) {
        let base = filled(rows * cols, seed);
        let kernel = |first: usize, chunk: &mut [f32]| {
            for (r, row) in chunk.chunks_exact_mut(cols).enumerate() {
                let scale = ((first + r) % 7) as f32 + 0.5;
                for (c, v) in row.iter_mut().enumerate() {
                    *v = v.mul_add(scale, (c % 11) as f32 * 0.25);
                }
            }
        };
        let mut serial = base.clone();
        {
            let _p = pin(1);
            run_chunks(&mut serial, rows, cols, kernel);
        }
        let mut pooled = base;
        {
            let _p = pin(threads);
            run_chunks(&mut pooled, rows, cols, kernel);
        }
        for (i, (s, p)) in serial.iter().zip(&pooled).enumerate() {
            prop_assert_eq!(s.to_bits(), p.to_bits(), "element {} diverged: {} vs {}", i, s, p);
        }
    }

    /// `run_indexed` visits every index exactly once and produces the same
    /// bits as the serial loop for every width.
    #[test]
    fn pooled_run_indexed_is_bit_identical_to_serial(
        n in 0usize..3_000,
        threads in 1usize..9,
        seed in 0u64..1_000,
    ) {
        let expect: Vec<u32> = (0..n).map(|i| task_value(i, seed).to_bits()).collect();
        let visits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let slots: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        {
            let _p = pin(threads);
            run_indexed(n, |i| {
                visits[i].fetch_add(1, Ordering::Relaxed);
                slots[i].store(task_value(i, seed).to_bits(), Ordering::Relaxed);
            });
        }
        for i in 0..n {
            prop_assert_eq!(visits[i].load(Ordering::Relaxed), 1, "index {} visit count", i);
            prop_assert_eq!(slots[i].load(Ordering::Relaxed), expect[i], "index {} value", i);
        }
    }

    /// `run_map` keeps results in index order regardless of which lane
    /// computed each entry.
    #[test]
    fn pooled_run_map_matches_serial_map(
        n in 0usize..1_000,
        threads in 1usize..9,
        seed in 0u64..1_000,
    ) {
        let expect: Vec<u32> = (0..n).map(|i| task_value(i, seed).to_bits()).collect();
        let got = {
            let _p = pin(threads);
            run_map(n, |i| task_value(i, seed).to_bits())
        };
        prop_assert_eq!(got, expect);
    }
}

/// Resizing the pool between dispatches (the Figure-5 thread sweep) must
/// never change results — only speed.
#[test]
fn resize_mid_sequence_keeps_results_identical() {
    let rows = 223;
    let cols = 97;
    let kernel = |first: usize, chunk: &mut [f32]| {
        for (r, row) in chunk.chunks_exact_mut(cols).enumerate() {
            let s = ((first + r) as f32).mul_add(0.01, 1.0);
            for v in row.iter_mut() {
                *v = (*v * s).tanh();
            }
        }
    };
    let base = filled(rows * cols, 42);
    let mut reference = base.clone();
    {
        let _p = pin(1);
        run_chunks(&mut reference, rows, cols, kernel);
    }
    // Sweep widths 1..=8 back-to-back against the same persistent pool,
    // resizing before each dispatch.
    let _p = pin(1);
    for threads in 1..=8 {
        set_threads(threads);
        let mut data = base.clone();
        run_chunks(&mut data, rows, cols, kernel);
        for (i, (r, d)) in reference.iter().zip(&data).enumerate() {
            assert_eq!(r.to_bits(), d.to_bits(), "width {threads}, element {i}");
        }
    }
}
