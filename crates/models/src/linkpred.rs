//! Link-prediction head (Section 6.1.2 / Figure 6 of the paper).
//!
//! Filters produce node embeddings; the head scores a node pair by an MLP
//! over the Hadamard product of the endpoint embeddings. The paper keeps the
//! downstream network simple on purpose — link prediction there measures the
//! *transformation-dominated* cost regime, where `κ·m` pair evaluations per
//! epoch force mini-batch training.

use std::sync::Arc;

use rand::rngs::SmallRng;
use sgnn_autograd::{NodeId, ParamStore, Tape};
use sgnn_dense::DMat;

use crate::mlp::Mlp;

/// Hadamard-MLP pair scorer.
pub struct LinkPredictor {
    mlp: Mlp,
}

impl LinkPredictor {
    /// `embed_dim` is the width of the node embeddings produced by the
    /// filter; the head is a two-layer MLP to a single logit.
    pub fn new(
        embed_dim: usize,
        hidden: usize,
        dropout: f32,
        store: &mut ParamStore,
        rng: &mut SmallRng,
    ) -> Self {
        Self {
            mlp: Mlp::new("linkpred", &[embed_dim, hidden, 1], dropout, store, rng),
        }
    }

    /// Scores a batch of pairs against precomputed embeddings `z`;
    /// returns the `(batch × 1)` logit node.
    pub fn score(
        &self,
        tape: &mut Tape,
        z: &DMat,
        pairs: &[(u32, u32)],
        store: &ParamStore,
    ) -> NodeId {
        let us: Vec<u32> = pairs.iter().map(|&(u, _)| u).collect();
        let vs: Vec<u32> = pairs.iter().map(|&(_, v)| v).collect();
        let zu = tape.constant(z.gather_rows(&us));
        let zv = tape.constant(z.gather_rows(&vs));
        let h = tape.hadamard(zu, zv);
        self.mlp.apply(tape, h, store)
    }

    /// Batch BCE loss for labeled pairs.
    pub fn loss(
        &self,
        tape: &mut Tape,
        z: &DMat,
        pairs: &[(u32, u32)],
        labels: Vec<f32>,
        store: &ParamStore,
    ) -> NodeId {
        let logits = self.score(tape, z, pairs, store);
        tape.bce_with_logits(logits, Arc::new(labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_autograd::{Adam, Optimizer};
    use sgnn_core::{make_filter, FilterModule, PropCtx};
    use sgnn_data::linkpred::link_splits;
    use sgnn_data::{dataset_spec, GenScale};
    use sgnn_dense::rng as drng;
    use sgnn_dense::stats::sigmoid;
    use sgnn_sparse::PropMatrix;

    #[test]
    fn link_prediction_beats_chance() {
        let data = dataset_spec("cora").unwrap().generate(GenScale::Tiny, 20);
        let pm = PropMatrix::new(&data.graph, 0.5);
        let splits = link_splits(&data.graph, 1, 21);
        // Node embeddings from a fixed PPR filter on raw attributes.
        let filter = make_filter("PPR", 5).unwrap();
        let mut store = ParamStore::new();
        let module = FilterModule::new(filter, data.features.cols(), &mut store);
        let ctx = PropCtx::forward(&pm);
        let terms = module.filter().propagate(&ctx, &data.features);
        let z = terms[0][0].clone();

        let mut rng = drng::seeded(22);
        let head = LinkPredictor::new(z.cols(), 32, 0.2, &mut store, &mut rng);
        let mut opt = Adam::new(0.01, 1e-5);
        for step in 0..60u64 {
            store.zero_grads();
            let mut tape = Tape::new(true, step);
            let loss = head.loss(
                &mut tape,
                &z,
                &splits.train.pairs,
                splits.train.labels.clone(),
                &store,
            );
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        // AUC-style check: mean positive score above mean negative score.
        let mut tape = Tape::new(false, 0);
        let logits = head.score(&mut tape, &z, &splits.test.pairs, &store);
        let scores = tape.value(logits);
        let (mut pos, mut neg, mut np, mut nn) = (0.0f64, 0.0f64, 0, 0);
        for (i, &l) in splits.test.labels.iter().enumerate() {
            let s = sigmoid(scores.get(i, 0)) as f64;
            if l > 0.5 {
                pos += s;
                np += 1;
            } else {
                neg += s;
                nn += 1;
            }
        }
        assert!(
            pos / np as f64 > neg / nn as f64 + 0.05,
            "positives must score higher"
        );
    }
}
