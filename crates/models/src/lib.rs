//! Model zoo for the spectral GNN benchmark.
//!
//! * [`mlp`] — the transformation stacks `φ0` / `φ1` (linear layers, ReLU,
//!   dropout) shared by all decoupled models,
//! * [`decoupled`] — the paper's main architecture
//!   `φ1(g(L̃)·φ0(X))`: any of the 27 filters plugged between two MLPs,
//!   with both full-batch and mini-batch forward paths,
//! * [`baselines`] — the iterative message-passing models of Table 6 (GCN,
//!   GraphSAGE with neighbor sampling, ChebNet), runnable on both the CSR
//!   ("SP") and the edge-list ("EI") propagation backends,
//! * [`transformer`] — lightweight graph transformers for Table 6:
//!   NAGphormer-lite (hop2token + per-node hop attention) and GtSample (an
//!   ANS-GT stand-in with sampled global attention),
//! * [`linkpred`] — the Hadamard-MLP link-prediction head of Section 6.1.2.

pub mod baselines;
pub mod decoupled;
pub mod linkpred;
pub mod mlp;
pub mod transformer;

pub use decoupled::DecoupledModel;
pub use mlp::Mlp;
