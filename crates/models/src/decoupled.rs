//! The decoupled spectral GNN `φ1( g(L̃) · φ0(X) )` — the architecture used
//! for all main experiments of the paper (Section 2.2, Table 4).
//!
//! Both learning schemes share the filter:
//!
//! * **Full-batch**: `φ0` (default one linear layer) transforms raw
//!   attributes to the hidden width, the filter propagates on the device,
//!   and `φ1` (default one layer) maps to class logits — everything on one
//!   tape, all parameters trained jointly.
//! * **Mini-batch**: `φ0` is empty (Table 4 fixes it to zero layers — the
//!   filter must run on raw attributes during CPU precomputation), and each
//!   batch recombines gathered term rows with the learnable `θ`/`γ` before a
//!   two-layer `φ1`.

use std::sync::Arc;

use rand::rngs::SmallRng;
use sgnn_autograd::{NodeId, ParamStore, Tape};
use sgnn_core::{FilterModule, SpectralFilter};
use sgnn_dense::DMat;
use sgnn_obs as obs;
use sgnn_sparse::PropMatrix;

use crate::mlp::Mlp;

/// Architecture hyperparameters (the universal scheme of Table 4).
#[derive(Clone, Copy, Debug)]
pub struct DecoupledConfig {
    /// Hidden width `F`.
    pub hidden: usize,
    /// Layers of the pre-transformation `φ0` (0 disables it; mini-batch
    /// requires 0).
    pub phi0_layers: usize,
    /// Layers of the post-transformation `φ1` (≥ 1).
    pub phi1_layers: usize,
    pub dropout: f32,
}

impl Default for DecoupledConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            phi0_layers: 1,
            phi1_layers: 1,
            dropout: 0.5,
        }
    }
}

impl DecoupledConfig {
    /// The paper's full-batch default: `φ0 = φ1 = 1` layer.
    pub fn full_batch(hidden: usize) -> Self {
        Self {
            hidden,
            phi0_layers: 1,
            phi1_layers: 1,
            dropout: 0.5,
        }
    }

    /// The paper's mini-batch default: `φ0 = 0`, `φ1 = 2` layers.
    pub fn mini_batch(hidden: usize) -> Self {
        Self {
            hidden,
            phi0_layers: 0,
            phi1_layers: 2,
            dropout: 0.5,
        }
    }
}

/// A filter bound between two MLP transformations.
pub struct DecoupledModel {
    pub config: DecoupledConfig,
    phi0: Option<Mlp>,
    pub filter: FilterModule,
    phi1: Mlp,
}

impl DecoupledModel {
    /// Builds the model for `in_dim`-dimensional attributes and `out_dim`
    /// classes, creating all parameters in `store`.
    pub fn new(
        filter: Arc<dyn SpectralFilter>,
        in_dim: usize,
        out_dim: usize,
        config: DecoupledConfig,
        store: &mut ParamStore,
        rng: &mut SmallRng,
    ) -> Self {
        let (phi0, filter_in) = if config.phi0_layers == 0 {
            (None, in_dim)
        } else {
            let mut dims = vec![in_dim];
            dims.extend(std::iter::repeat_n(config.hidden, config.phi0_layers));
            (
                Some(Mlp::new("phi0", &dims, config.dropout, store, rng)),
                config.hidden,
            )
        };
        let module = FilterModule::new(filter, filter_in, store);
        let phi1_in = module.out_features(filter_in);
        let mut dims = vec![phi1_in];
        dims.extend(std::iter::repeat_n(
            config.hidden,
            config.phi1_layers.saturating_sub(1),
        ));
        dims.push(out_dim);
        let phi1 = Mlp::new("phi1", &dims, config.dropout, store, rng);
        Self {
            config,
            phi0,
            filter: module,
            phi1,
        }
    }

    /// Full-batch forward: raw attributes to logits, filter on the tape.
    pub fn forward_fb(
        &self,
        tape: &mut Tape,
        pm: &Arc<PropMatrix>,
        x: NodeId,
        store: &ParamStore,
    ) -> NodeId {
        // The epoch.propagate / epoch.transform split below is the paper's
        // propagation-vs-transformation cost decomposition (Figs 2-3); the
        // tape executes ops eagerly, so each span bounds real kernel work.
        let h = {
            let _sp = obs::span!("epoch.transform", stage = "phi0");
            match &self.phi0 {
                Some(mlp) => {
                    let h = mlp.apply(tape, x, store);
                    tape.relu(h)
                }
                None => x,
            }
        };
        let filtered = {
            let _sp = obs::span!("epoch.propagate");
            self.filter.apply_fb(tape, pm, h, store)
        };
        let _sp = obs::span!("epoch.transform", stage = "phi1");
        self.phi1.apply(tape, filtered, store)
    }

    /// Mini-batch precompute: basis terms over raw attributes
    /// (`φ0` must be empty).
    pub fn precompute_mb(&self, pm: &PropMatrix, x: &DMat) -> Vec<Vec<DMat>> {
        assert!(
            self.phi0.is_none(),
            "mini-batch requires φ0 = 0 layers (Table 4)"
        );
        self.filter.precompute(pm, x)
    }

    /// Mini-batch forward over gathered term rows.
    pub fn forward_mb(
        &self,
        tape: &mut Tape,
        batch_terms: &[Vec<DMat>],
        store: &ParamStore,
    ) -> NodeId {
        let _sp = obs::span!("epoch.transform", stage = "mb");
        let combined = self.filter.combine_batch(tape, batch_terms, store);
        self.phi1.apply(tape, combined, store)
    }
}

/// Gathers the given rows of every precomputed term (the mini-batch slicing
/// step, performed on "CPU" before the batch moves to the device).
///
/// Channels slice independently, so multi-channel filter banks gather
/// across the worker pool.
pub fn gather_terms(terms: &[Vec<DMat>], idx: &[u32]) -> Vec<Vec<DMat>> {
    let _sp = obs::span!("mb.gather", rows = idx.len(), channels = terms.len());
    sgnn_dense::runtime::run_map(terms.len(), |q| {
        terms[q].iter().map(|t| t.gather_rows(idx)).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_autograd::{Adam, Optimizer};
    use sgnn_core::make_filter;
    use sgnn_data::{dataset_spec, GenScale};
    use sgnn_dense::rng as drng;
    use sgnn_dense::stats::argmax;

    fn accuracy(logits: &DMat, labels: &[u32], idx: &[u32]) -> f64 {
        let correct = idx
            .iter()
            .filter(|&&i| argmax(logits.row(i as usize)) as u32 == labels[i as usize])
            .count();
        correct as f64 / idx.len().max(1) as f64
    }

    #[test]
    fn fb_training_beats_chance_on_homophilous_graph() {
        let data = dataset_spec("cora").unwrap().generate(GenScale::Tiny, 0);
        let pm = Arc::new(PropMatrix::new(&data.graph, 0.5));
        let mut rng = drng::seeded(0);
        let mut store = ParamStore::new();
        let filter = make_filter("PPR", 6).unwrap();
        let model = DecoupledModel::new(
            filter,
            data.features.cols(),
            data.num_classes,
            DecoupledConfig {
                hidden: 32,
                phi0_layers: 1,
                phi1_layers: 1,
                dropout: 0.3,
            },
            &mut store,
            &mut rng,
        );
        let mut opt = Adam::new(0.02, 5e-4);
        let targets = Arc::new(data.targets_of(&data.splits.train));
        for step in 0..60 {
            store.zero_grads();
            let mut tape = Tape::new(true, step);
            let x = tape.constant(data.features.clone());
            let logits = model.forward_fb(&mut tape, &pm, x, &store);
            let train_logits = tape.gather_rows(logits, Arc::new(data.splits.train.clone()));
            let loss = tape.softmax_cross_entropy(train_logits, Arc::clone(&targets));
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let mut tape = Tape::new(false, 0);
        let x = tape.constant(data.features.clone());
        let logits = model.forward_fb(&mut tape, &pm, x, &store);
        let acc = accuracy(tape.value(logits), &data.labels, &data.splits.test);
        assert!(acc > 0.5, "test accuracy {acc} (chance ≈ 0.14)");
    }

    #[test]
    fn mb_training_matches_fb_ballpark() {
        let data = dataset_spec("cora").unwrap().generate(GenScale::Tiny, 1);
        let pm = PropMatrix::new(&data.graph, 0.5);
        let mut rng = drng::seeded(1);
        let mut store = ParamStore::new();
        let filter = make_filter("Monomial", 6).unwrap();
        let model = DecoupledModel::new(
            filter,
            data.features.cols(),
            data.num_classes,
            DecoupledConfig {
                hidden: 32,
                phi0_layers: 0,
                phi1_layers: 2,
                dropout: 0.3,
            },
            &mut store,
            &mut rng,
        );
        let terms = model.precompute_mb(&pm, &data.features);
        let mut opt = Adam::new(0.02, 5e-4);
        let train = data.splits.train.clone();
        let targets = data.targets_of(&train);
        let batch = 256usize;
        for epoch in 0..30u64 {
            for (b, chunk) in train.chunks(batch).enumerate() {
                store.zero_grads();
                let batch_terms = gather_terms(&terms, chunk);
                let y: Vec<u32> = chunk.iter().map(|&i| data.labels[i as usize]).collect();
                let mut tape = Tape::new(true, epoch * 1000 + b as u64);
                let logits = model.forward_mb(&mut tape, &batch_terms, &store);
                let loss = tape.softmax_cross_entropy(logits, Arc::new(y));
                tape.backward(loss, &mut store);
                opt.step(&mut store);
            }
        }
        drop(targets);
        // Inference over all nodes.
        let all: Vec<u32> = (0..data.nodes() as u32).collect();
        let all_terms = gather_terms(&terms, &all);
        let mut tape = Tape::new(false, 0);
        let logits = model.forward_mb(&mut tape, &all_terms, &store);
        let acc = accuracy(tape.value(logits), &data.labels, &data.splits.test);
        assert!(acc > 0.5, "MB test accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "mini-batch requires")]
    fn mb_with_phi0_is_rejected() {
        let data = dataset_spec("cora").unwrap().generate(GenScale::Tiny, 2);
        let pm = PropMatrix::new(&data.graph, 0.5);
        let mut rng = drng::seeded(2);
        let mut store = ParamStore::new();
        let model = DecoupledModel::new(
            make_filter("PPR", 4).unwrap(),
            data.features.cols(),
            data.num_classes,
            DecoupledConfig::full_batch(16),
            &mut store,
            &mut rng,
        );
        let _ = model.precompute_mb(&pm, &data.features);
    }
}
