//! Lightweight graph transformers for the Table-6 comparison.
//!
//! * [`NagphormerLite`] — NAGphormer's hop2token construction: the
//!   precomputation stage materializes `K + 1` hop-aggregated feature
//!   matrices (`Ã^k X`), and each node attends over its own `K + 1` hop
//!   tokens with a single-head projection. This keeps NAGphormer's defining
//!   traits — heavy precomputation, per-node token attention, mini-batch
//!   trainability — at a fraction of the original's parameter count.
//! * [`GtSample`] — stand-in for ANS-GT (adaptive node sampling graph
//!   transformer): every node attends over a uniformly sampled anchor set
//!   with full query/key/value projections. Reproduces the cost shape of
//!   sampled global attention (quadratic-in-anchors score matrix, very slow
//!   training) without ANS-GT's reinforcement-learned sampler.

use rand::rngs::SmallRng;
use sgnn_autograd::param::ParamGroup;
use sgnn_autograd::{NodeId, ParamId, ParamStore, Tape};
use sgnn_dense::{rng as drng, DMat};
use sgnn_sparse::PropMatrix;

use crate::mlp::Mlp;

/// NAGphormer-lite: hop tokens + single-head hop attention + MLP head.
pub struct NagphormerLite {
    pub hops: usize,
    dim: usize,
    proj: ParamId,
    query: ParamId,
    value: ParamId,
    head: Mlp,
}

impl NagphormerLite {
    pub fn new(
        hops: usize,
        in_dim: usize,
        dim: usize,
        out_dim: usize,
        dropout: f32,
        store: &mut ParamStore,
        rng: &mut SmallRng,
    ) -> Self {
        let proj = store.add(
            "nag.proj",
            drng::glorot(in_dim, dim, rng),
            ParamGroup::Network,
        );
        let query = store.add("nag.query", drng::glorot(dim, 1, rng), ParamGroup::Network);
        let value = store.add(
            "nag.value",
            drng::glorot(dim, dim, rng),
            ParamGroup::Network,
        );
        let head = Mlp::new("nag.head", &[dim, dim, out_dim], dropout, store, rng);
        Self {
            hops,
            dim,
            proj,
            query,
            value,
            head,
        }
    }

    /// Precomputation: hop-aggregated token matrices `Ã^k X`, `k = 0..=K`.
    pub fn hop2token(&self, pm: &PropMatrix, x: &DMat) -> Vec<DMat> {
        let mut tokens = Vec::with_capacity(self.hops + 1);
        tokens.push(x.clone());
        for k in 0..self.hops {
            tokens.push(pm.prop(1.0, 0.0, &tokens[k]));
        }
        tokens
    }

    /// Forward over a batch of token rows (one `DMat` per hop, equal rows).
    pub fn forward(&self, tape: &mut Tape, tokens: &[DMat], store: &ParamStore) -> NodeId {
        assert_eq!(tokens.len(), self.hops + 1, "one token matrix per hop");
        let projn = tape.param(store, self.proj);
        let queryn = tape.param(store, self.query);
        let valuen = tape.param(store, self.value);
        // Per-hop projected tokens and attention scores.
        let mut scores = Vec::with_capacity(tokens.len());
        let mut values = Vec::with_capacity(tokens.len());
        let scale = 1.0 / (self.dim as f32).sqrt();
        for t in tokens {
            let tn = tape.constant(t.clone());
            let p = tape.matmul(tn, projn);
            let p = tape.tanh(p);
            let s = tape.matmul(p, queryn);
            let s = tape.scale(s, scale);
            scores.push(s);
            values.push(tape.matmul(p, valuen));
        }
        let score_mat = tape.hcat(&scores);
        let attn = tape.softmax_rows(score_mat);
        let mut readout: Option<NodeId> = None;
        for (k, &v) in values.iter().enumerate() {
            let a_k = tape.slice_cols(attn, k, 1);
            let weighted = tape.row_scale(v, a_k);
            readout = Some(match readout {
                None => weighted,
                Some(acc) => tape.add(acc, weighted),
            });
        }
        self.head
            .apply(tape, readout.expect("at least one hop token"), store)
    }
}

/// Sampled-global-attention transformer (ANS-GT stand-in).
pub struct GtSample {
    dim: usize,
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
    head: Mlp,
}

impl GtSample {
    pub fn new(
        in_dim: usize,
        dim: usize,
        out_dim: usize,
        dropout: f32,
        store: &mut ParamStore,
        rng: &mut SmallRng,
    ) -> Self {
        let wq = store.add("gt.wq", drng::glorot(in_dim, dim, rng), ParamGroup::Network);
        let wk = store.add("gt.wk", drng::glorot(in_dim, dim, rng), ParamGroup::Network);
        let wv = store.add("gt.wv", drng::glorot(in_dim, dim, rng), ParamGroup::Network);
        let head = Mlp::new(
            "gt.head",
            &[dim + in_dim, dim, out_dim],
            dropout,
            store,
            rng,
        );
        Self {
            dim,
            wq,
            wk,
            wv,
            head,
        }
    }

    /// Forward: every row of `x` attends over the `anchors` rows.
    pub fn forward(
        &self,
        tape: &mut Tape,
        x: &DMat,
        anchors: &[u32],
        store: &ParamStore,
    ) -> NodeId {
        let xs = x.gather_rows(anchors);
        let xn = tape.constant(x.clone());
        let xsn = tape.constant(xs);
        let wq = tape.param(store, self.wq);
        let wk = tape.param(store, self.wk);
        let wv = tape.param(store, self.wv);
        let q = tape.matmul(xn, wq); // n × d
        let k = tape.matmul(xsn, wk); // s × d
        let v = tape.matmul(xsn, wv); // s × d
                                      // scores[i, j] = ⟨q_i, k_j⟩ / √d — sampled global attention.
        let scores = tape.matmul_bt(q, k);
        let scores = tape.scale(scores, 1.0 / (self.dim as f32).sqrt());
        let attn = tape.softmax_rows(scores); // n × s
        let ctx = tape.matmul(attn, v); // n × d
        let joined = tape.hcat(&[ctx, xn]);
        self.head.apply(tape, joined, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_autograd::{Adam, Optimizer};
    use sgnn_data::{dataset_spec, GenScale};
    use sgnn_dense::stats::argmax;
    use std::sync::Arc;

    #[test]
    fn nagphormer_learns_node_classification() {
        let data = dataset_spec("cora").unwrap().generate(GenScale::Tiny, 9);
        let pm = PropMatrix::new(&data.graph, 0.5);
        let mut rng = drng::seeded(9);
        let mut store = ParamStore::new();
        let model = NagphormerLite::new(
            4,
            data.features.cols(),
            32,
            data.num_classes,
            0.2,
            &mut store,
            &mut rng,
        );
        let tokens = model.hop2token(&pm, &data.features);
        assert_eq!(tokens.len(), 5);
        let mut opt = Adam::new(0.01, 1e-4);
        let train = &data.splits.train;
        let train_tokens: Vec<DMat> = tokens.iter().map(|t| t.gather_rows(train)).collect();
        let targets = Arc::new(data.targets_of(train));
        for step in 0..80 {
            store.zero_grads();
            let mut tape = Tape::new(true, step);
            let logits = model.forward(&mut tape, &train_tokens, &store);
            let loss = tape.softmax_cross_entropy(logits, Arc::clone(&targets));
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let all: Vec<u32> = (0..data.nodes() as u32).collect();
        let all_tokens: Vec<DMat> = tokens.iter().map(|t| t.gather_rows(&all)).collect();
        let mut tape = Tape::new(false, 0);
        let logits = model.forward(&mut tape, &all_tokens, &store);
        let acc = data
            .splits
            .test
            .iter()
            .filter(|&&i| {
                argmax(tape.value(logits).row(i as usize)) as u32 == data.labels[i as usize]
            })
            .count() as f64
            / data.splits.test.len() as f64;
        assert!(acc > 0.4, "NAGphormer-lite accuracy {acc}");
    }

    #[test]
    fn gt_sample_learns_with_few_anchors() {
        let data = dataset_spec("cora").unwrap().generate(GenScale::Tiny, 10);
        let mut rng = drng::seeded(10);
        let mut store = ParamStore::new();
        let model = GtSample::new(
            data.features.cols(),
            16,
            data.num_classes,
            0.2,
            &mut store,
            &mut rng,
        );
        let anchors: Vec<u32> = (0..16).map(|i| i * 7 % data.nodes() as u32).collect();
        let mut opt = Adam::new(0.01, 1e-4);
        let targets = Arc::new(data.targets_of(&data.splits.train));
        for step in 0..60 {
            store.zero_grads();
            let mut tape = Tape::new(true, step);
            let logits = model.forward(&mut tape, &data.features, &anchors, &store);
            let tl = tape.gather_rows(logits, Arc::new(data.splits.train.clone()));
            let loss = tape.softmax_cross_entropy(tl, Arc::clone(&targets));
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let mut tape = Tape::new(false, 0);
        let logits = model.forward(&mut tape, &data.features, &anchors, &store);
        let acc = data
            .splits
            .test
            .iter()
            .filter(|&&i| {
                argmax(tape.value(logits).row(i as usize)) as u32 == data.labels[i as usize]
            })
            .count() as f64
            / data.splits.test.len() as f64;
        assert!(acc > 0.4, "GtSample accuracy {acc}");
    }
}
