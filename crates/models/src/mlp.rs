//! Multi-layer perceptron transformation stacks (`φ0`, `φ1`).

use rand::rngs::SmallRng;
use sgnn_autograd::param::ParamGroup;
use sgnn_autograd::{NodeId, ParamId, ParamStore, Tape};
use sgnn_dense::{rng as drng, DMat};

/// A stack of `Linear → ReLU → Dropout` layers (activation and dropout are
/// skipped after the last layer).
pub struct Mlp {
    layers: Vec<(ParamId, ParamId)>,
    dims: Vec<usize>,
    dropout: f32,
}

impl Mlp {
    /// Builds an MLP through the given layer widths, e.g. `[64, 32, 7]` is
    /// two layers `64→32→7`. `dims.len() >= 2`.
    pub fn new(
        name: &str,
        dims: &[usize],
        dropout: f32,
        store: &mut ParamStore,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least one layer");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let weight = store.add(
                    format!("{name}.w{i}"),
                    drng::glorot(w[0], w[1], rng),
                    ParamGroup::Network,
                );
                let bias = store.add(
                    format!("{name}.b{i}"),
                    DMat::zeros(1, w[1]),
                    ParamGroup::Network,
                );
                (weight, bias)
            })
            .collect();
        Self {
            layers,
            dims: dims.to_vec(),
            dropout,
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.dims[0]
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        *self.dims.last().unwrap()
    }

    /// Applies the stack on the tape.
    pub fn apply(&self, tape: &mut Tape, x: NodeId, store: &ParamStore) -> NodeId {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, &(w, b)) in self.layers.iter().enumerate() {
            let wn = tape.param(store, w);
            let bn = tape.param(store, b);
            h = tape.matmul(h, wn);
            h = tape.add_bias(h, bn);
            if i != last {
                h = tape.relu(h);
                h = tape.dropout(h, self.dropout);
            }
        }
        h
    }

    /// Parameter handles (for per-group hyperparameters or inspection).
    pub fn params(&self) -> impl Iterator<Item = ParamId> + '_ {
        self.layers.iter().flat_map(|&(w, b)| [w, b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_autograd::{Adam, Optimizer};
    use std::sync::Arc;

    #[test]
    fn shapes_flow_through() {
        let mut store = ParamStore::new();
        let mut rng = drng::seeded(0);
        let mlp = Mlp::new("m", &[8, 16, 3], 0.5, &mut store, &mut rng);
        assert_eq!(mlp.num_layers(), 2);
        assert_eq!(mlp.out_dim(), 3);
        let mut tape = Tape::new(false, 0);
        let x = tape.constant(DMat::zeros(5, 8));
        let out = mlp.apply(&mut tape, x, &store);
        assert_eq!(tape.value(out).shape(), (5, 3));
    }

    #[test]
    fn learns_xor_like_separation() {
        // A 2-layer MLP must fit a non-linearly-separable toy problem.
        let mut store = ParamStore::new();
        let mut rng = drng::seeded(1);
        let mlp = Mlp::new("m", &[2, 16, 2], 0.0, &mut store, &mut rng);
        let x = DMat::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let y = Arc::new(vec![0u32, 1, 1, 0]);
        let mut opt = Adam::new(0.05, 0.0);
        let mut last = f32::MAX;
        for step in 0..300 {
            store.zero_grads();
            let mut tape = Tape::new(true, step);
            let xn = tape.constant(x.clone());
            let logits = mlp.apply(&mut tape, xn, &store);
            let loss = tape.softmax_cross_entropy(logits, Arc::clone(&y));
            last = tape.value(loss).get(0, 0);
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!(last < 0.05, "XOR loss stuck at {last}");
    }
}
