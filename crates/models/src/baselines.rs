//! Iterative message-passing baselines outside the unified framework
//! (Table 6 of the paper): GCN, GraphSAGE with neighbor sampling, and
//! ChebNet, each runnable on the CSR ("SP") or edge-list ("EI") backend.
//!
//! These models interleave propagation and transformation per layer (the
//! *iterative* architecture of Section 2.1), so each training step must hold
//! the whole graph and all layer activations on the device — the structural
//! reason Table 6 shows them OOM where the decoupled mini-batch models
//! survive.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;
use sgnn_autograd::{NodeId, ParamStore, Tape};
use sgnn_sparse::{Backend, Graph, PropMatrix};

use crate::mlp::Mlp;

/// Which iterative baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineKind {
    /// Kipf & Welling GCN: `H ← ReLU((I + Ã)H W)`.
    Gcn,
    /// GraphSAGE-mean: `H ← ReLU([H ‖ ÃH] W)` over a sampled neighborhood.
    GraphSage,
    /// ChebNet with order-2 Chebyshev convolution per layer.
    ChebNet,
}

impl BaselineKind {
    pub fn name(&self) -> &'static str {
        match self {
            BaselineKind::Gcn => "GCN",
            BaselineKind::GraphSage => "GraphSAGE",
            BaselineKind::ChebNet => "ChebNet",
        }
    }
}

/// An iterative message-passing model.
pub struct IterativeGnn {
    pub kind: BaselineKind,
    layers: Vec<Mlp>,
}

impl IterativeGnn {
    /// Builds `num_layers` propagation+transformation layers.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: BaselineKind,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        num_layers: usize,
        dropout: f32,
        store: &mut ParamStore,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(num_layers >= 1);
        // Per-layer input width multiplier: SAGE concatenates self ‖ agg,
        // ChebNet concatenates the 3 Chebyshev terms.
        let mult = match kind {
            BaselineKind::Gcn => 1,
            BaselineKind::GraphSage => 2,
            BaselineKind::ChebNet => 3,
        };
        let mut layers = Vec::with_capacity(num_layers);
        let mut cur = in_dim;
        for l in 0..num_layers {
            let out = if l + 1 == num_layers { out_dim } else { hidden };
            layers.push(Mlp::new(
                &format!("{}.layer{l}", kind.name()),
                &[cur * mult, out],
                dropout,
                store,
                rng,
            ));
            cur = out;
        }
        Self { kind, layers }
    }

    /// Full forward pass over all nodes.
    pub fn forward(
        &self,
        tape: &mut Tape,
        pm: &Arc<PropMatrix>,
        x: NodeId,
        store: &ParamStore,
    ) -> NodeId {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (l, mlp) in self.layers.iter().enumerate() {
            let z = match self.kind {
                BaselineKind::Gcn => tape.prop(pm, 1.0, 1.0, h),
                BaselineKind::GraphSage => {
                    let agg = tape.prop(pm, 1.0, 0.0, h);
                    tape.hcat(&[h, agg])
                }
                BaselineKind::ChebNet => {
                    // Order-2 Chebyshev: [T0, T1, T2] ‖-concatenated.
                    let t1 = tape.prop(pm, -1.0, 0.0, h);
                    let mut t2 = tape.prop(pm, -2.0, 0.0, t1);
                    t2 = tape.sub(t2, h);
                    tape.hcat(&[h, t1, t2])
                }
            };
            h = mlp.apply(tape, z, store);
            if l != last {
                h = tape.relu(h);
            }
        }
        h
    }
}

/// A row-subsampled propagation operator for GraphSAGE-style neighbor
/// sampling: every node keeps at most `fanout` random neighbors, with mean
/// normalization.
pub fn sampled_prop_matrix(
    graph: &Graph,
    fanout: usize,
    backend: Backend,
    rng: &mut SmallRng,
) -> PropMatrix {
    let n = graph.nodes();
    let mut edges = Vec::with_capacity(n * fanout.min(8));
    for u in 0..n {
        let nbrs = graph.neighbors(u);
        if nbrs.len() <= fanout {
            edges.extend(nbrs.iter().map(|&v| (u as u32, v)));
        } else {
            for _ in 0..fanout {
                let v = nbrs[rng.random_range(0..nbrs.len())];
                edges.push((u as u32, v));
            }
        }
    }
    // Build a directed sampled graph; PropMatrix normalizes it row-wise
    // (ρ = 0 ⇒ mean aggregation).
    let mut coo = sgnn_sparse::coo::Coo::with_capacity(n, n, edges.len());
    for (u, v) in edges {
        coo.push(u, v, 1.0);
    }
    let mut adj = coo.into_csr();
    adj.map_values(|_| 1.0);
    let g = Graph::from_adjacency(adj);
    PropMatrix::with_options(&g, 0.0, true, backend)
}

/// Approximate device bytes of one full-batch training step of an iterative
/// model (used for OOM detection in the Table-6 harness before the machine
/// actually exhausts memory).
pub fn estimated_step_bytes(n: usize, dims: &[usize], backend_transient: usize) -> usize {
    // Activations + gradients per layer, plus the backend's per-hop message
    // buffer.
    let acts: usize = dims.iter().map(|&d| n * d * 4 * 2).sum();
    acts + backend_transient
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgnn_autograd::{Adam, Optimizer};
    use sgnn_data::{dataset_spec, GenScale};
    use sgnn_dense::stats::argmax;
    use sgnn_dense::{rng as drng, DMat};

    fn train_baseline(kind: BaselineKind, backend: Backend) -> f64 {
        let data = dataset_spec("cora").unwrap().generate(GenScale::Tiny, 3);
        let pm = Arc::new(PropMatrix::with_options(&data.graph, 0.5, true, backend));
        let mut rng = drng::seeded(4);
        let mut store = ParamStore::new();
        let model = IterativeGnn::new(
            kind,
            data.features.cols(),
            32,
            data.num_classes,
            2,
            0.3,
            &mut store,
            &mut rng,
        );
        let mut opt = Adam::new(0.02, 5e-4);
        let targets = Arc::new(data.targets_of(&data.splits.train));
        for step in 0..50 {
            store.zero_grads();
            let mut tape = Tape::new(true, step);
            let x = tape.constant(data.features.clone());
            let logits = model.forward(&mut tape, &pm, x, &store);
            let tl = tape.gather_rows(logits, Arc::new(data.splits.train.clone()));
            let loss = tape.softmax_cross_entropy(tl, Arc::clone(&targets));
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let mut tape = Tape::new(false, 0);
        let x = tape.constant(data.features.clone());
        let logits = model.forward(&mut tape, &pm, x, &store);
        let correct = data
            .splits
            .test
            .iter()
            .filter(|&&i| {
                argmax(tape.value(logits).row(i as usize)) as u32 == data.labels[i as usize]
            })
            .count();
        correct as f64 / data.splits.test.len() as f64
    }

    #[test]
    fn gcn_learns_on_homophilous_graph() {
        assert!(train_baseline(BaselineKind::Gcn, Backend::Csr) > 0.5);
    }

    #[test]
    fn sage_and_chebnet_learn() {
        assert!(train_baseline(BaselineKind::GraphSage, Backend::Csr) > 0.5);
        assert!(train_baseline(BaselineKind::ChebNet, Backend::Csr) > 0.5);
    }

    #[test]
    fn edge_list_backend_gives_same_quality() {
        assert!(train_baseline(BaselineKind::Gcn, Backend::EdgeList) > 0.5);
    }

    #[test]
    fn sampled_prop_limits_fanout() {
        let data = dataset_spec("cora").unwrap().generate(GenScale::Tiny, 5);
        let mut rng = drng::seeded(6);
        let pm = sampled_prop_matrix(&data.graph, 3, Backend::Csr, &mut rng);
        // Each row has at most fanout + self-loop entries.
        for r in 0..pm.n() {
            assert!(pm.adj().row(r).0.len() <= 4);
        }
        // Mean normalization: rows sum to 1 for non-isolated nodes.
        let x = DMat::filled(pm.n(), 1, 1.0);
        let y = pm.prop(1.0, 0.0, &x);
        for r in 0..pm.n() {
            assert!((y.get(r, 0) - 1.0).abs() < 1e-5);
        }
    }
}
