//! Overload control: when clients bring deadlines the queue cannot meet,
//! the server sheds at *enqueue* — a typed `Overloaded` with a
//! `retry_after_ms` hint — instead of burning batcher time on rows whose
//! deadline will have expired by the time they compute. The request
//! conservation law stays exact under the storm, and a deadline-free
//! probe is served normally afterwards.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sgnn_serve::bundle::load_engine;
use sgnn_serve::{faults, serve, Client, ErrorCode, Reply, ServeConfig};

#[test]
fn aggressive_deadlines_trigger_shedding_with_exact_accounting() {
    sgnn_obs::enable_aggregation();
    sgnn_obs::reset();

    let (dir, data, _cfg) = common::tiny_bundle("overload", 37);
    let n = data.nodes() as u32;

    // Every batch takes at least 4 ms: the admission estimator learns a
    // high per-row cost, so a 2 ms deadline behind a non-empty queue is
    // provably unmeetable and must be shed.
    faults::install(faults::parse("slow dur=0.004").unwrap());
    let engine = load_engine(&dir).unwrap();
    let server = serve(
        engine,
        ServeConfig {
            linger: Duration::from_millis(2),
            max_batch_rows: 8,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Warm the admission estimator past its sample floor: deadline-free
    // queries are never shed, and each one becomes a measured batch.
    let mut warm = Client::connect(addr).unwrap();
    for i in 0..40u32 {
        match warm.query(&[i % n]).unwrap() {
            Reply::Logits(_) => {}
            other => panic!("warmup query {i}: {other:?}"),
        }
    }

    // The storm: closed-loop clients all demanding a 2 ms turnaround the
    // 4 ms-per-batch server cannot possibly give once a queue forms.
    let shed_seen = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..16u64)
        .map(|w| {
            let shed_seen = Arc::clone(&shed_seen);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..30u64 {
                    let v = ((w * 31 + round * 7) % n as u64) as u32;
                    match client.query_deadline(&[v], 2) {
                        Ok(Reply::Logits(_)) => {}
                        Ok(Reply::Error {
                            code,
                            retry_after_ms,
                            ..
                        }) => {
                            if code == ErrorCode::Overloaded {
                                shed_seen.fetch_add(1, Ordering::Relaxed);
                                // The shed reply must carry a usable hint.
                                assert!(
                                    retry_after_ms >= 1,
                                    "worker {w} round {round}: shed without a retry hint"
                                );
                            }
                        }
                        Ok(other) => panic!("worker {w} round {round}: {other:?}"),
                        Err(e) => panic!("worker {w} round {round}: transport {e:?}"),
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // Deadline-free service afterwards is unaffected.
    match warm.query(&[0]).unwrap() {
        Reply::Logits(_) => {}
        other => panic!("post-storm probe: {other:?}"),
    }
    server.shutdown();
    faults::clear();

    let snap = sgnn_obs::snapshot();
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    let shed = c("serve.shed");
    assert!(shed > 0, "unmeetable deadlines must be shed at enqueue");
    assert_eq!(
        shed,
        shed_seen.load(Ordering::Relaxed),
        "every shed on the server must be a typed Overloaded on a client"
    );
    assert_eq!(
        c("serve.requests"),
        c("serve.batches") + c("serve.batch.coalesced") + shed + c("serve.rejected"),
        "conservation law must hold exactly with shedding in play"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
