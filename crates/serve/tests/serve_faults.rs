//! Fault injection on the request path: deadline timeouts, queue
//! backpressure, malformed frames, and torn/corrupt artifacts must all
//! surface as *typed* errors — never a crash, never a hang.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use sgnn_serve::artifact::{self, ServeMeta, TermsError};
use sgnn_serve::bundle::{load_engine, CKPT_FILE, TERMS_FILE};
use sgnn_serve::{faults, serve, Client, ErrorCode, Reply, ServeConfig, ServeError};

/// Fault plans are process-global; the server-driving tests in this binary
/// take this lock so one test's armed faults never leak into another.
static FAULT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn slow_batch_expires_deadlines_into_typed_timeouts() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (dir, _data, _cfg) = common::tiny_bundle("faults-slow", 19);
    // Every batch sleeps 50 ms; a 5 ms deadline cannot survive it.
    faults::install(faults::parse("slow dur=0.05").unwrap());
    let engine = load_engine(&dir).unwrap();
    let server = serve(engine, ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    match client.query_deadline(&[0], 5).unwrap() {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::Timeout),
        other => panic!("a 5 ms deadline must expire behind a 50 ms fault, got {other:?}"),
    }
    // Same connection, no deadline: the slow batch is tolerated.
    assert!(matches!(client.query(&[0]).unwrap(), Reply::Logits(_)));

    // Disarm and the fast path is back.
    faults::clear();
    assert!(matches!(
        client.query_deadline(&[0], 5000).unwrap(),
        Reply::Logits(_)
    ));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_replies_backpressure_without_hanging() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (dir, _data, _cfg) = common::tiny_bundle("faults-bp", 23);
    // One-slot queue, one-row batches, and a 100 ms handler: concurrent
    // queries must overflow the queue immediately.
    faults::install(faults::parse("slow dur=0.1").unwrap());
    let engine = load_engine(&dir).unwrap();
    let server = serve(
        engine,
        ServeConfig {
            queue_cap: 1,
            max_batch_rows: 1,
            linger: Duration::ZERO,
            cache_cap: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let started = Instant::now();
    let workers: Vec<_> = (0..10)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                match c.query(&[0]).unwrap() {
                    Reply::Logits(_) => (1u32, 0u32),
                    Reply::Error { code, .. } => {
                        assert_eq!(code, ErrorCode::Backpressure, "only typed backpressure");
                        (0, 1)
                    }
                    other => panic!("unexpected reply {other:?}"),
                }
            })
        })
        .collect();
    let (mut served, mut pushed_back) = (0, 0);
    for w in workers {
        let (s, b) = w.join().unwrap();
        served += s;
        pushed_back += b;
    }
    // Bounded queue, typed refusal, and nobody waited on a hung socket.
    assert!(
        pushed_back > 0,
        "the 1-slot queue must push back under 10 concurrent queries"
    );
    assert!(served > 0, "accepted queries still complete");
    assert_eq!(served + pushed_back, 10);
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "backpressure must be immediate, not a hang"
    );
    faults::clear();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_fail_is_internal_error_and_server_survives() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (dir, _data, _cfg) = common::tiny_bundle("faults-fail", 29);
    faults::install(faults::parse("fail").unwrap());
    let engine = load_engine(&dir).unwrap();
    let server = serve(engine, ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    match client.query(&[0]).unwrap() {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::Internal),
        other => panic!("injected fail must reply Internal, got {other:?}"),
    }
    faults::clear();
    assert!(matches!(client.query(&[0]).unwrap(), Reply::Logits(_)));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_and_oversized_frames_get_error_replies() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (dir, _data, _cfg) = common::tiny_bundle("faults-frame", 31);
    let engine = load_engine(&dir).unwrap();
    let server = serve(engine, ServeConfig::default()).unwrap();

    // Garbage body with a valid length prefix → BadFrame reply, then the
    // server closes the connection (framing can no longer be trusted).
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(&8u32.to_le_bytes()).unwrap();
    raw.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0, 1, 2, 3])
        .unwrap();
    let body = sgnn_serve::wire::read_frame(&mut raw, sgnn_serve::wire::MAX_BODY)
        .unwrap()
        .expect("a BadFrame reply, not a silent close");
    match sgnn_serve::wire::decode_response(&body).unwrap() {
        sgnn_serve::Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected BadFrame, got {other:?}"),
    }
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "connection must be closed after a bad frame"
    );

    // Oversized declared length → same ladder rung, without the server
    // ever allocating the body.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let body = sgnn_serve::wire::read_frame(&mut raw, sgnn_serve::wire::MAX_BODY)
        .unwrap()
        .expect("a BadFrame reply for an oversized frame");
    match sgnn_serve::wire::decode_response(&body).unwrap() {
        sgnn_serve::Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected BadFrame, got {other:?}"),
    }

    // Out-of-range and oversized queries are typed replies and the
    // connection keeps working.
    let mut client = Client::connect(server.addr()).unwrap();
    match client.query(&[u32::MAX]).unwrap() {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::NodeOutOfRange),
        other => panic!("node u32::MAX cannot exist in a tiny graph, got {other:?}"),
    }
    let too_many: Vec<u32> = vec![0; ServeConfig::default().max_nodes_per_query + 1];
    match client.query(&too_many).unwrap() {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::TooLarge),
        other => panic!("per-query node cap must hold, got {other:?}"),
    }
    assert!(matches!(client.query(&[0]).unwrap(), Reply::Logits(_)));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slowloris_partial_frame_is_cut_off_at_the_deadline() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (dir, _data, _cfg) = common::tiny_bundle("faults-loris", 41);
    let engine = load_engine(&dir).unwrap();
    let server = serve(
        engine,
        ServeConfig {
            frame_deadline: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // A malicious peer sends a frame length and two body bytes, then goes
    // silent. The old blocking reader would hold its thread forever; the
    // incremental reader must cut the connection at the partial-frame
    // deadline with a typed BadFrame reply.
    let started = Instant::now();
    let mut loris = TcpStream::connect(server.addr()).unwrap();
    loris.write_all(&64u32.to_le_bytes()).unwrap();
    loris.write_all(&[1, 2]).unwrap();
    let body = sgnn_serve::wire::read_frame(&mut loris, sgnn_serve::wire::MAX_BODY)
        .unwrap()
        .expect("a BadFrame reply, not silence");
    match sgnn_serve::wire::decode_response(&body).unwrap() {
        sgnn_serve::Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected BadFrame, got {other:?}"),
    }
    let mut rest = Vec::new();
    loris.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "stalled connection must be closed");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the stall must be cut at the deadline, not tolerated"
    );

    // Honest clients are unaffected, before and after.
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(matches!(client.query(&[0]).unwrap(), Reply::Logits(_)));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Small synthetic artifact for the exhaustive truncation sweep (a trained
/// bundle's terms file is megabytes; every-offset truncation wants a few
/// hundred bytes).
fn tiny_artifact() -> Vec<u8> {
    let meta = ServeMeta {
        filter: "Monomial".into(),
        hops: 2,
        hidden: 8,
        dropout: 0.5,
        in_dim: 3,
        num_classes: 2,
        nodes: 4,
        seed: 7,
        config_tag: 0xABCD,
    };
    let t = |s: f32| sgnn_dense::DMat::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * s);
    artifact::encode(&meta, &[vec![t(1.0), t(-0.5), t(0.25)]])
}

#[test]
fn torn_terms_artifact_rejected_at_every_truncation_offset() {
    let dir = common::scratch_dir("faults-torn");
    let bytes = tiny_artifact();
    let path = dir.join("terms.bin");
    // Sanity: the untruncated artifact loads.
    std::fs::write(&path, &bytes).unwrap();
    artifact::load(&path).unwrap();
    for cut in 0..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = artifact::load(&path).expect_err(&format!(
            "truncation at {cut}/{} must be rejected",
            bytes.len()
        ));
        assert!(
            matches!(
                err,
                TermsError::Truncated | TermsError::BadMagic | TermsError::CrcMismatch
            ),
            "cut {cut}: unexpected error {err:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_ckpt_and_mismatched_pairing_are_typed_load_errors() {
    let (dir, _data, _cfg) = common::tiny_bundle("faults-corrupt", 37);

    // Flip one payload byte of the model checkpoint: SGNNCKPT CRC catches it.
    let ckpt = dir.join(CKPT_FILE);
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&ckpt, &bytes).unwrap();
    let err = load_engine(&dir)
        .err()
        .expect("corrupt checkpoint must fail");
    assert!(
        matches!(err, ServeError::Ckpt(_)),
        "corrupt checkpoint must fail as ServeError::Ckpt, got {err}"
    );
    bytes[last] ^= 0x40;
    std::fs::write(&ckpt, &bytes).unwrap();
    load_engine(&dir).unwrap();

    // Terms from a *different run* (other seed): rejected by the pairing
    // guard even though both artifacts are individually valid.
    let (dir2, _data2, _cfg2) = common::tiny_bundle("faults-corrupt-b", 38);
    std::fs::copy(dir2.join(TERMS_FILE), dir.join(TERMS_FILE)).unwrap();
    let err = load_engine(&dir)
        .err()
        .expect("mixed-run artifacts must fail");
    assert!(
        matches!(err, ServeError::Pairing(_)),
        "mixed-run artifacts must fail the pairing check, got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}
