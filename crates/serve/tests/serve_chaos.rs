//! Network-chaos end-to-end: the acceptance test for ISSUE 9. One server
//! rides out the full socket-fault DSL (`stall`, `disconnect`,
//! `torn-write`, `corrupt-frame`), a forced batcher panic, and two hot
//! reloads — all at once, under concurrent retrying clients. Afterwards:
//!
//! * nothing hung (the test finishes; every worker joined);
//! * the conservation law holds **exactly** once the storm quiesces:
//!   `serve.requests == serve.batches + serve.batch.coalesced +
//!   serve.shed + serve.rejected`;
//! * every logits reply that did get through is bit-identical to offline
//!   inference (the reloads swap in identical bundle bytes, so there is
//!   one reference for the whole storm);
//! * the server still answers a clean probe after the faults are lifted.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sgnn_serve::bundle::load_engine;
use sgnn_serve::{faults, serve, Backoff, Client, Reply, ServeConfig};

const WORKERS: u64 = 8;
const ROUNDS: u64 = 50;
const CONNECT_ATTEMPTS: u32 = 10;

#[derive(Default)]
struct StormTally {
    ok: AtomicU64,
    typed_errors: AtomicU64,
    transport_errors: AtomicU64,
}

#[test]
fn survives_the_full_storm_with_exact_accounting() {
    sgnn_obs::enable_aggregation();
    sgnn_obs::reset();

    let (dir, data, _cfg) = common::tiny_bundle("chaos", 29);
    let n = data.nodes() as u32;
    let pool: Vec<u32> = (0..16u32.min(n)).map(|i| (i * n) / 16).collect();

    // One reference for the whole storm: the mid-storm reloads re-read the
    // *same* bundle bytes, so served bits must never change.
    let mut reference = load_engine(&dir).unwrap();
    let ref_bits: Vec<Vec<u32>> = pool
        .iter()
        .map(|&v| {
            reference
                .logits(&[v])
                .row(0)
                .iter()
                .map(|x| x.to_bits())
                .collect()
        })
        .collect();

    // The storm: every socket fault in the DSL pinned to early accept
    // indices (initial worker connections land there), a slow-down on all
    // batches so the queue actually builds, and one injected batcher
    // panic. `batch=6` fires exactly once — the sequence is monotonic
    // across the restart it causes.
    faults::install(
        faults::parse(
            "stall conn=2 dur=0.02; disconnect conn=5; torn-write conn=7; \
             corrupt-frame conn=3; slow dur=0.002; panic batch=6",
        )
        .unwrap(),
    );

    let engine = load_engine(&dir).unwrap();
    let server = serve(
        engine,
        ServeConfig {
            bundle_dir: Some(dir.clone()),
            linger: Duration::from_millis(3),
            max_batch_rows: 32,
            cache_cap: 64,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let tally = Arc::new(StormTally::default());
    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let ref_bits = ref_bits.clone();
            let pool = pool.clone();
            let tally = Arc::clone(&tally);
            std::thread::spawn(move || {
                let mut backoff = Backoff::for_seed(w);
                let mut client = Client::connect_retry(addr, CONNECT_ATTEMPTS, &mut backoff)
                    .expect("worker must get a connection");
                for round in 0..ROUNDS {
                    let slot = ((w * 19 + round * 7) % pool.len() as u64) as usize;
                    match client.query(&[pool[slot]]) {
                        Ok(Reply::Logits(m)) => {
                            let got: Vec<u32> = m.row(0).iter().map(|x| x.to_bits()).collect();
                            assert_eq!(
                                got, ref_bits[slot],
                                "worker {w} round {round}: served bits differ from offline"
                            );
                            tally.ok.fetch_add(1, Ordering::Relaxed);
                        }
                        // Typed errors are the server refusing or failing
                        // *loudly*: Internal from the panic sweep,
                        // Backpressure/Overloaded from shedding. All fine
                        // during a storm — silence is the only failure.
                        Ok(Reply::Error { .. }) => {
                            tally.typed_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Reply::Reloaded { .. }) => {
                            panic!("worker {w}: Reloaded for a query nonce")
                        }
                        // Torn write, corrupted frame, or injected
                        // disconnect: drop the connection and come back.
                        Err(_) => {
                            tally.transport_errors.fetch_add(1, Ordering::Relaxed);
                            client = Client::connect_retry(addr, CONNECT_ATTEMPTS, &mut backoff)
                                .expect("worker must reconnect after a fault");
                        }
                    }
                }
            })
        })
        .collect();

    // Two hot reloads mid-storm, from an admin connection that itself may
    // be hit by socket faults — retry until each swap is acknowledged.
    let mut reload_backoff = Backoff::for_seed(0xAD);
    let mut acked_reloads = 0u32;
    while acked_reloads < 2 {
        std::thread::sleep(Duration::from_millis(60));
        let Ok(mut admin) = Client::connect_retry(addr, CONNECT_ATTEMPTS, &mut reload_backoff)
        else {
            continue;
        };
        match admin.reload() {
            Ok(Reply::Reloaded { .. }) => acked_reloads += 1,
            Ok(other) => panic!("identical bundle bytes must reload cleanly, got {other:?}"),
            // The ack was torn or the conn injected away; the swap may or
            // may not have landed — the counter assertion below is `>= 2`
            // for exactly this reason.
            Err(_) => {}
        }
    }

    for w in workers {
        w.join().unwrap();
    }

    // Post-storm probe: lift the faults and hit the *same* server — it
    // must still accept, serve, and answer bit-identically after the
    // panic, the restarts, both reloads, and every severed connection.
    faults::clear();
    let mut probe = Client::connect(addr).unwrap();
    match probe.query(&[pool[0]]).unwrap() {
        Reply::Logits(m) => {
            let got: Vec<u32> = m.row(0).iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, ref_bits[0], "post-storm probe must be bit-identical");
        }
        other => panic!("post-storm probe failed: {other:?}"),
    }
    drop(probe);

    // Workers are closed-loop, so everything they enqueued has been
    // batched by now; quiesce and freeze the counters.
    server.shutdown();

    let snap = sgnn_obs::snapshot();
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    let requests = c("serve.requests");
    let batches = c("serve.batches");
    let coalesced = c("serve.batch.coalesced");
    let shed = c("serve.shed");
    let rejected = c("serve.rejected");
    assert!(requests > 0, "the storm must have produced traffic");
    assert_eq!(
        requests,
        batches + coalesced + shed + rejected,
        "conservation law must hold exactly after quiesce: {requests} requests \
         vs {batches} batches + {coalesced} coalesced + {shed} shed + {rejected} rejected"
    );
    assert!(
        c("serve.batcher_restarts") >= 1,
        "the injected panic must have tripped the watchdog"
    );
    assert!(
        c("serve.reloads") >= 2,
        "both mid-storm reloads must have landed (got {})",
        c("serve.reloads")
    );
    assert_eq!(
        c("serve.reload.failed"),
        0,
        "identical bundle bytes never fail to load"
    );
    assert!(
        c("serve.faults.injected") > 0,
        "the harness must have actually injected faults"
    );
    let ok = tally.ok.load(Ordering::Relaxed);
    let typed = tally.typed_errors.load(Ordering::Relaxed);
    let transport = tally.transport_errors.load(Ordering::Relaxed);
    assert_eq!(
        ok + typed + transport,
        WORKERS * ROUNDS,
        "every round accounted for"
    );
    assert!(ok > 0, "some queries must succeed through the storm");
    assert!(
        transport > 0,
        "the socket faults must have actually severed connections"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
