//! Shared scaffolding for the serving integration suites: train a tiny
//! model, export its bundle to a fresh temp dir, hand back the pieces.

use std::path::PathBuf;

use sgnn_core::make_filter;
use sgnn_data::{dataset_spec, Dataset, GenScale};
use sgnn_serve::bundle::train_and_export;
use sgnn_train::TrainConfig;

/// A unique temp dir per (suite, tag) so parallel test binaries never
/// collide.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sgnn-serve-{tag}-{}-{}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Trains a tiny Monomial model on cSBM-cora and exports a serving bundle.
/// Small on purpose: the suites exercise the request path, not accuracy.
pub fn tiny_bundle(tag: &str, seed: u64) -> (PathBuf, Dataset, TrainConfig) {
    let data = dataset_spec("cora").unwrap().generate(GenScale::Tiny, seed);
    let mut cfg = TrainConfig::fast_test(seed);
    cfg.epochs = 5;
    cfg.patience = 0;
    cfg.hops = 3;
    cfg.hidden = 24;
    cfg.batch_size = 256;
    let dir = scratch_dir(tag);
    train_and_export(
        &dir,
        make_filter("Monomial", cfg.hops).unwrap(),
        &data,
        &cfg,
    )
    .unwrap_or_else(|e| panic!("bundle export: {e}"));
    (dir, data, cfg)
}
