//! Hot bundle reload: an atomic, validated, generation-tagged engine swap
//! with no restart — plus crash-safe rollback when the new bundle is bad.
//!
//! The invariants under test:
//! * after a reload, queries return the **new** bundle's logits
//!   bit-identically to offline inference on it (satellite: LRU
//!   invalidation across reload — no stale cached row survives the swap);
//! * a corrupt bundle is rejected (`Internal` reply, `serve.reload.failed`)
//!   and the previous engine keeps serving, still bit-identical;
//! * the `reload.request` marker file triggers the same swap without an
//!   admin connection.

mod common;

use std::time::{Duration, Instant};

use sgnn_serve::bundle::{load_engine, offline_logits, CKPT_FILE};
use sgnn_serve::server::RELOAD_MARKER;
use sgnn_serve::{serve, Client, ErrorCode, Reply, ServeConfig};

/// Counters are process-global; reload tests serialize and assert deltas.
static RELOAD_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn query_bits(client: &mut Client, node: u32) -> Vec<u32> {
    match client.query(&[node]).unwrap() {
        Reply::Logits(m) => m.row(0).iter().map(|x| x.to_bits()).collect(),
        other => panic!("expected logits for node {node}, got {other:?}"),
    }
}

#[test]
fn reload_swaps_weights_and_invalidates_the_cache() {
    let _g = RELOAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    sgnn_obs::enable_aggregation();
    let before = sgnn_obs::snapshot();

    let (dir, _data, _cfg) = common::tiny_bundle("reload-swap", 51);
    let node = 3u32;
    let old_ref = bits(&offline_logits(&dir, node).unwrap());

    let engine = load_engine(&dir).unwrap();
    let server = serve(
        engine,
        ServeConfig {
            bundle_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Serve node twice: the second answer comes from the LRU cache.
    assert_eq!(query_bits(&mut client, node), old_ref);
    assert_eq!(query_bits(&mut client, node), old_ref);

    // Replace the bundle on disk with a different training run (other
    // seed → other weights), then hot-swap.
    let (dir2, _d2, _c2) = common::tiny_bundle("reload-swap-new", 52);
    for f in [CKPT_FILE, sgnn_serve::bundle::TERMS_FILE] {
        std::fs::copy(dir2.join(f), dir.join(f)).unwrap();
    }
    let new_ref = bits(&offline_logits(&dir, node).unwrap());
    assert_ne!(old_ref, new_ref, "the two runs must have different weights");

    match client.reload().unwrap() {
        Reply::Reloaded { generation } => assert_eq!(generation, 1),
        other => panic!("reload must succeed, got {other:?}"),
    }

    // The very next query must be the *new* logits, bit-identical to
    // offline inference on the new bundle — a stale cache hit would
    // return `old_ref` here.
    assert_eq!(query_bits(&mut client, node), new_ref);

    server.shutdown();
    let after = sgnn_obs::snapshot();
    let delta = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    assert_eq!(delta("serve.reloads"), 1);
    assert!(
        delta("serve.cache.invalidated") >= 1,
        "the cached row for node {node} must have been invalidated"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn corrupt_bundle_is_rolled_back_and_old_engine_keeps_serving() {
    let _g = RELOAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    sgnn_obs::enable_aggregation();
    let before = sgnn_obs::snapshot();

    let (dir, _data, _cfg) = common::tiny_bundle("reload-rollback", 53);
    let node = 1u32;
    let old_ref = bits(&offline_logits(&dir, node).unwrap());

    let engine = load_engine(&dir).unwrap();
    let server = serve(
        engine,
        ServeConfig {
            bundle_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(query_bits(&mut client, node), old_ref);

    // Corrupt the on-disk checkpoint, then ask for a reload: the swap
    // must be refused with a typed error, not crash the server or swap
    // in garbage.
    let ckpt = dir.join(CKPT_FILE);
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&ckpt, &bytes).unwrap();

    match client.reload().unwrap() {
        Reply::Error { code, msg, .. } => {
            assert_eq!(code, ErrorCode::Internal, "{msg}");
            assert!(
                msg.contains("previous engine kept"),
                "rollback must be explicit: {msg}"
            );
        }
        other => panic!("corrupt bundle must be rejected, got {other:?}"),
    }

    // The previous engine is still serving, still bit-identical.
    assert_eq!(query_bits(&mut client, node), old_ref);

    server.shutdown();
    let after = sgnn_obs::snapshot();
    let delta = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    assert_eq!(delta("serve.reloads"), 0, "no successful reload happened");
    assert_eq!(delta("serve.reload.failed"), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn marker_file_triggers_reload_without_a_client() {
    let _g = RELOAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    sgnn_obs::enable_aggregation();
    let before = sgnn_obs::snapshot();

    let (dir, _data, _cfg) = common::tiny_bundle("reload-marker", 54);
    let engine = load_engine(&dir).unwrap();
    let server = serve(
        engine,
        ServeConfig {
            bundle_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let marker = dir.join(RELOAD_MARKER);
    std::fs::write(&marker, b"").unwrap();
    // The batcher polls the marker while idle; give it a few beats.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let reloads = sgnn_obs::snapshot().counter("serve.reloads").unwrap_or(0)
            - before.counter("serve.reloads").unwrap_or(0);
        if reloads >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "marker-file reload did not happen within 10s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(!marker.exists(), "the marker must be consumed");

    // Server still answers (same bundle contents, new generation).
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(matches!(client.query(&[0]).unwrap(), Reply::Logits(_)));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reload_without_bundle_dir_is_a_typed_refusal() {
    let _g = RELOAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (dir, _data, _cfg) = common::tiny_bundle("reload-nodir", 55);
    let engine = load_engine(&dir).unwrap();
    let server = serve(engine, ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    match client.reload().unwrap() {
        Reply::Error { code, msg, .. } => {
            assert_eq!(code, ErrorCode::Internal);
            assert!(msg.contains("bundle directory"), "{msg}");
        }
        other => panic!("expected a typed refusal, got {other:?}"),
    }
    // And the server is unbothered.
    assert!(matches!(client.query(&[0]).unwrap(), Reply::Logits(_)));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
