//! Batching/concurrency stress: hammer one server from interleaved
//! closed-loop clients and prove the batching path's three invariants —
//! coalescing actually happens (`serve.batch.coalesced` > 0), no response
//! is lost or cross-wired (every reply's nonce and *contents* match its
//! request), and cache hits are byte-identical to cache misses.

mod common;

use std::time::Duration;

use sgnn_serve::bundle::load_engine;
use sgnn_serve::{faults, serve, Client, Reply, ServeConfig};

#[test]
fn coalescing_cache_identity_and_no_cross_wiring() {
    sgnn_obs::enable_aggregation();
    sgnn_obs::reset();

    let (dir, data, _cfg) = common::tiny_bundle("stress", 17);
    let n = data.nodes() as u32;
    // Queries draw from a small hot pool spread across the graph: every
    // node is requested repeatedly, so the LRU must serve hits, and the
    // pool fits the cache so eviction churn can't starve it.
    let pool: Vec<u32> = (0..24u32.min(n)).map(|i| (i * n) / 24).collect();

    // Reference bits once, from a private engine.
    let mut reference = load_engine(&dir).unwrap();
    let ref_bits: Vec<Vec<u32>> = pool
        .iter()
        .map(|&v| {
            reference
                .logits(&[v])
                .row(0)
                .iter()
                .map(|x| x.to_bits())
                .collect()
        })
        .collect();

    // A `slow` fault on every batch (3 ms) plus a generous linger makes the
    // closed-loop clients pile up behind the batcher deterministically:
    // while batch k computes, the queue fills, so batch k+1 coalesces.
    faults::install(faults::parse("slow dur=0.003").unwrap());
    let engine = load_engine(&dir).unwrap();
    let server = serve(
        engine,
        ServeConfig {
            linger: Duration::from_millis(4),
            max_batch_rows: 64,
            cache_cap: 64,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let workers: Vec<_> = (0..8u64)
        .map(|w| {
            let ref_bits = ref_bits.clone();
            let pool = pool.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..40u64 {
                    // Overlapping id streams across workers: the same node
                    // is queried hot by one worker and cold by another.
                    let slot = ((w * 13 + round * 17) % pool.len() as u64) as usize;
                    let v = pool[slot];
                    match client.query(&[v]).unwrap() {
                        Reply::Logits(m) => {
                            let got: Vec<u32> = m.row(0).iter().map(|x| x.to_bits()).collect();
                            // Bitwise equality against the per-node
                            // reference catches cross-wired *contents* even
                            // if nonces lined up.
                            assert_eq!(got, ref_bits[slot], "worker {w} node {v}");
                        }
                        Reply::Error { code, msg, .. } => {
                            panic!("worker {w} round {round}: {code:?}: {msg}")
                        }
                        Reply::Reloaded { .. } => {
                            panic!("worker {w} round {round}: unexpected Reloaded")
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    server.shutdown();
    faults::clear();

    let snap = sgnn_obs::snapshot();
    let requests = snap.counter("serve.requests").unwrap_or(0);
    let batches = snap.counter("serve.batches").unwrap_or(0);
    let coalesced = snap.counter("serve.batch.coalesced").unwrap_or(0);
    let hits = snap.counter("serve.cache.hit").unwrap_or(0);
    let misses = snap.counter("serve.cache.miss").unwrap_or(0);
    assert_eq!(requests, 8 * 40, "every query must be counted");
    assert!(batches > 0);
    assert!(
        coalesced > 0,
        "coalescing must occur: {requests} requests in {batches} batches"
    );
    assert!(misses > 0, "cold nodes must miss");
    assert!(hits > 0, "hot nodes must hit the LRU cache");
    // Conservation (tightened, ISSUE 9): every request counted in
    // `serve.requests` ends in exactly one bucket — it reached a batch
    // (batches + coalesced), was shed by admission, or was rejected
    // (TooLarge / Backpressure / in-flight cap). Nothing is ever
    // silently dropped.
    let shed = snap.counter("serve.shed").unwrap_or(0);
    let rejected = snap.counter("serve.rejected").unwrap_or(0);
    assert_eq!(
        requests,
        batches + coalesced + shed + rejected,
        "request conservation: {requests} requests vs {batches} batches + \
         {coalesced} coalesced + {shed} shed + {rejected} rejected"
    );
    // This run has no deadlines and tame clients, so nothing should have
    // been shed or rejected and every request must have reached a batch.
    assert_eq!(shed, 0, "no deadline-bearing requests to shed");
    assert_eq!(rejected, 0, "no oversized or over-cap requests");
    assert!(snap.hist("serve.batch_size").is_some_and(|h| h.count > 0));
    assert!(snap.hist("serve.queue_ns").is_some_and(|h| h.count > 0));
    assert!(snap.hist("serve.request_ns").is_some_and(|h| h.count > 0));
    assert!(
        snap.span("serve.batch").is_some(),
        "serve.batch span must be recorded"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
