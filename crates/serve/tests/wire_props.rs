//! Property tests for the two serving codecs: the wire protocol
//! (request/response frames) and the `SGNNTERM` terms artifact. Arbitrary
//! values must round-trip byte-exactly, and any single bit flip must be
//! rejected — CRC32 detects all single-bit errors by construction, so a
//! flip that decodes successfully is a codec bug.

use proptest::prelude::*;
use sgnn_dense::DMat;
use sgnn_serve::artifact::{self, ServeMeta};
use sgnn_serve::wire::{
    decode_request, decode_response, encode_request, encode_response, ErrorCode, Request, Response,
    WireError,
};

// The compat proptest shim has no `prop_oneof`; variants are picked by a
// sampled selector inside one `prop_map`.
fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u8..3,
        any::<u64>(),
        any::<u32>(),
        proptest::collection::vec(any::<u32>(), 1..40),
    )
        .prop_map(|(sel, nonce, deadline_ms, nodes)| match sel {
            0 => Request::Query {
                nonce,
                deadline_ms,
                nodes,
            },
            1 => Request::Reload { nonce },
            _ => Request::Ping { nonce },
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    // Logit values from i16 bit patterns scaled down: exact in f32, never
    // NaN, covers negatives and zero.
    (
        (0u8..4, any::<u64>()),
        (1u32..6, 1u32..5),
        proptest::collection::vec(any::<i16>(), 25..26),
        (0u8..8, any::<u32>()),
        proptest::collection::vec(32u8..127, 0..20),
    )
        .prop_map(
            |((sel, nonce), (rows, cols), pool, (code, retry_after_ms), msg)| match sel {
                0 => Response::Logits {
                    nonce,
                    rows,
                    cols,
                    data: (0..rows as usize * cols as usize)
                        .map(|i| pool[i % pool.len()] as f32 / 64.0)
                        .collect(),
                },
                1 => Response::Error {
                    nonce,
                    code: ErrorCode::from_byte(code).unwrap(),
                    retry_after_ms,
                    msg: msg.into_iter().map(char::from).collect(),
                },
                2 => Response::Reloaded {
                    nonce,
                    // Reuse the entropy already on hand for the tag.
                    generation: nonce ^ (retry_after_ms as u64),
                },
                _ => Response::Pong { nonce },
            },
        )
}

/// Arbitrary (meta, terms): small shapes, exact f32 values.
fn arb_artifact() -> impl Strategy<Value = (ServeMeta, Vec<Vec<DMat>>)> {
    (
        (
            proptest::collection::vec(32u8..127, 1..16),
            0usize..12,
            1usize..64,
            any::<u64>(),
            any::<u64>(),
        ),
        (1usize..4, 1usize..4, 1usize..5, 1usize..4),
        proptest::collection::vec(any::<i16>(), 60..61),
    )
        .prop_map(
            |((name, hops, hidden, seed, config_tag), (channels, nterms, rows, cols), pool)| {
                let meta = ServeMeta {
                    filter: name.into_iter().map(char::from).collect(),
                    hops,
                    hidden,
                    dropout: 0.5,
                    in_dim: cols,
                    num_classes: 2,
                    nodes: rows,
                    seed,
                    config_tag,
                };
                let terms: Vec<Vec<DMat>> = (0..channels)
                    .map(|c| {
                        (0..nterms)
                            .map(|k| {
                                DMat::from_fn(rows, cols, |i, j| {
                                    pool[(c * 17 + k * 7 + i * 3 + j) % pool.len()] as f32 / 32.0
                                })
                            })
                            .collect()
                    })
                    .collect();
                (meta, terms)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `decode(encode(req))` is the identity on the frame body.
    #[test]
    fn request_round_trips(req in arb_request()) {
        let frame = encode_request(&req);
        prop_assert_eq!(decode_request(&frame[4..]).unwrap(), req);
    }

    /// Responses round-trip; equality via re-encoded bytes so every f32
    /// bit pattern (including signed zero) is compared exactly.
    #[test]
    fn response_round_trips(resp in arb_response()) {
        let frame = encode_response(&resp);
        let back = decode_response(&frame[4..]).unwrap();
        prop_assert_eq!(encode_response(&back), frame);
    }

    /// Any single bit flip in a request body is a deterministic
    /// `CrcMismatch` — the CRC is checked before any field is parsed.
    #[test]
    fn request_bit_flip_detected(req in arb_request(), pos in any::<usize>()) {
        let frame = encode_request(&req);
        let mut body = frame[4..].to_vec();
        let bit = pos % (body.len() * 8);
        body[bit / 8] ^= 1 << (bit % 8);
        prop_assert_eq!(decode_request(&body).unwrap_err(), WireError::CrcMismatch);
    }

    /// Same for responses.
    #[test]
    fn response_bit_flip_detected(resp in arb_response(), pos in any::<usize>()) {
        let frame = encode_response(&resp);
        let mut body = frame[4..].to_vec();
        let bit = pos % (body.len() * 8);
        body[bit / 8] ^= 1 << (bit % 8);
        prop_assert_eq!(decode_response(&body).unwrap_err(), WireError::CrcMismatch);
    }

    /// Arbitrary terms artifacts round-trip bit-exactly through the
    /// streamed save/load path.
    #[test]
    fn artifact_round_trips(mt in arb_artifact()) {
        let (meta, terms) = mt;
        let dir = std::env::temp_dir()
            .join(format!("sgnn-term-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bin");
        artifact::save(&path, &meta, &terms).unwrap();
        let got = artifact::load(&path).unwrap();
        prop_assert_eq!(got.meta, meta);
        prop_assert_eq!(got.terms, terms);
    }

    /// A single bit flip anywhere in the artifact file — header or payload
    /// — must surface as a typed error, never a successful load.
    #[test]
    fn artifact_bit_flip_detected(mt in arb_artifact(), pos in any::<usize>()) {
        let (meta, terms) = mt;
        let dir = std::env::temp_dir()
            .join(format!("sgnn-term-flip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bin");
        let mut bytes = artifact::encode(&meta, &terms);
        let bit = pos % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(artifact::load(&path).is_err(), "bit {} must be detected", bit);
    }
}
