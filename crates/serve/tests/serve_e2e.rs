//! End-to-end serving: train a tiny model, export its bundle, boot the
//! server on an ephemeral port, and prove that every served response —
//! across concurrent clients, arbitrary batch compositions, and cache
//! state — is **bit-identical** to offline single-node inference on the
//! same checkpoint.

mod common;

use std::time::Duration;

use sgnn_serve::bundle::{load_engine, offline_logits};
use sgnn_serve::{serve, Client, Reply, ServeConfig};

/// Offline reference: one fresh engine, one node per forward pass — the
/// strictest possible baseline (nothing shares a batch with anything).
fn single_node_reference(dir: &std::path::Path, nodes: usize) -> Vec<Vec<u32>> {
    let mut engine = load_engine(dir).unwrap();
    (0..nodes as u32)
        .map(|v| {
            engine
                .logits(&[v])
                .row(0)
                .iter()
                .map(|x| x.to_bits())
                .collect()
        })
        .collect()
}

#[test]
fn served_logits_bit_identical_to_offline_single_node() {
    let (dir, data, _cfg) = common::tiny_bundle("e2e", 11);
    let n = data.nodes();
    let reference = single_node_reference(&dir, n);

    // `bundle::offline_logits` (fresh engine per call) agrees with the
    // shared-engine reference — engine construction is deterministic.
    for &v in &[0u32, 1, (n as u32) / 2, n as u32 - 1] {
        let off: Vec<u32> = offline_logits(&dir, v)
            .unwrap()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(off, reference[v as usize], "offline_logits node {v}");
    }

    let engine = load_engine(&dir).unwrap();
    let classes = engine.classes();
    let server = serve(engine, ServeConfig::default()).unwrap();
    let addr = server.addr();

    // Concurrent clients, each issuing single- and multi-node queries with
    // deterministic but different id patterns.
    let workers: Vec<_> = (0..8u64)
        .map(|w| {
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..30u64 {
                    let k = 1 + ((w + round) % 5) as usize;
                    let nodes: Vec<u32> = (0..k)
                        .map(|j| ((w * 911 + round * 31 + j as u64 * 7) % reference.len() as u64) as u32)
                        .collect();
                    match client.query(&nodes).unwrap() {
                        Reply::Logits(m) => {
                            assert_eq!(m.shape(), (nodes.len(), classes));
                            for (r, &v) in nodes.iter().enumerate() {
                                let got: Vec<u32> =
                                    m.row(r).iter().map(|x| x.to_bits()).collect();
                                assert_eq!(
                                    got, reference[v as usize],
                                    "worker {w} round {round} node {v}: served bits differ from offline"
                                );
                            }
                        }
                        Reply::Error { code, msg, .. } => {
                            panic!("worker {w} round {round}: unexpected error {code:?}: {msg}")
                        }
                        Reply::Reloaded { .. } => {
                            panic!("worker {w} round {round}: unexpected Reloaded")
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ping_reconnect_and_clean_shutdown() {
    let (dir, _data, _cfg) = common::tiny_bundle("e2e-ping", 13);
    let engine = load_engine(&dir).unwrap();
    let server = serve(engine, ServeConfig::default()).unwrap();
    let addr = server.addr();

    // Several short-lived connections in sequence: the server must keep
    // accepting after peers hang up.
    for _ in 0..3 {
        let mut c = Client::connect(addr).unwrap();
        c.ping().unwrap();
        assert!(matches!(c.query(&[0]).unwrap(), Reply::Logits(_)));
        drop(c);
    }
    server.shutdown();
    // After shutdown the port no longer accepts (give the OS a beat).
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        Client::connect_timeout(addr, Duration::from_millis(200)).is_err(),
        "server socket must be closed after shutdown"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
