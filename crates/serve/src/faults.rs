//! Deterministic fault injection for the request path — the serving
//! counterpart of `sgnn_bench::faults` (PR 3), same `;`-separated
//! `kind key=value` grammar, applied per *batch* instead of per grid cell.
//!
//! ```text
//! slow [batch=K] [dur=S]   sleep S seconds (default 0.005) before batch K
//!                          (every batch when K is omitted) computes —
//!                          drives deadline-timeout and coalescing tests
//! fail [batch=K]           the handler for batch K (every batch when K is
//!                          omitted) fails; all requests in it get a typed
//!                          `Internal` error reply, the server stays up
//! ```
//!
//! Faults install process-globally ([`install`]/[`clear`]), or from the
//! `SGNN_SERVE_FAULTS` environment variable; injections count into the
//! `serve.faults.injected` counter.

use std::sync::Mutex;
use std::time::Duration;

use sgnn_obs::Counter;

static INJECTED: Counter = Counter::new("serve.faults.injected");

#[derive(Clone, Debug, PartialEq)]
pub enum ServeFault {
    Slow {
        /// Batch sequence number to hit; `None` = every batch.
        batch: Option<u64>,
        dur: Duration,
    },
    Fail {
        batch: Option<u64>,
    },
}

#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    pub faults: Vec<ServeFault>,
}

static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Parses a fault spec. Empty spec = empty plan.
pub fn parse(spec: &str) -> Result<FaultPlan, String> {
    let mut faults = Vec::new();
    for clause in spec.split(';') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let mut parts = clause.split_whitespace();
        let kind = parts.next().expect("clause is non-empty");
        let mut batch = None;
        let mut dur = None;
        for kv in parts {
            let (key, value) = kv
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{kv}`"))?;
            match key {
                "batch" => {
                    batch = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("bad batch `{value}`"))?,
                    )
                }
                "dur" => {
                    let s = value
                        .parse::<f64>()
                        .map_err(|_| format!("bad dur `{value}`"))?;
                    if !(s >= 0.0 && s.is_finite()) {
                        return Err(format!("dur must be finite and >= 0, got {value}"));
                    }
                    dur = Some(Duration::from_secs_f64(s));
                }
                other => return Err(format!("unknown key `{other}` in `{clause}`")),
            }
        }
        match kind {
            "slow" => faults.push(ServeFault::Slow {
                batch,
                dur: dur.unwrap_or(Duration::from_millis(5)),
            }),
            "fail" => {
                if dur.is_some() {
                    return Err("`fail` takes no dur".into());
                }
                faults.push(ServeFault::Fail { batch });
            }
            other => return Err(format!("unknown fault kind `{other}`")),
        }
    }
    Ok(FaultPlan { faults })
}

/// Arms a plan process-globally (replacing any previous one).
pub fn install(plan: FaultPlan) {
    *PLAN.lock().unwrap() = Some(plan);
}

/// Disarms fault injection.
pub fn clear() {
    *PLAN.lock().unwrap() = None;
}

/// Arms from `SGNN_SERVE_FAULTS` when set; panics on a malformed spec (a
/// misspelled fault test is a bug, not a condition to tolerate).
pub fn install_from_env() {
    if let Ok(spec) = std::env::var("SGNN_SERVE_FAULTS") {
        let plan = parse(&spec).unwrap_or_else(|e| panic!("bad SGNN_SERVE_FAULTS: {e}"));
        install(plan);
    }
}

/// What the batch handler must do about an armed fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Injected {
    /// Reply `Internal` to every request in the batch.
    Fail,
}

/// Hook called once per batch with its sequence number. `slow` faults sleep
/// here (inline, so queueing backs up exactly as a slow model would);
/// `fail` faults return [`Injected::Fail`].
pub fn on_batch(seq: u64) -> Option<Injected> {
    let plan = PLAN.lock().unwrap().clone()?;
    let mut out = None;
    for fault in &plan.faults {
        match fault {
            ServeFault::Slow { batch, dur } if batch.is_none() || *batch == Some(seq) => {
                INJECTED.incr();
                std::thread::sleep(*dur);
            }
            ServeFault::Fail { batch } if batch.is_none() || *batch == Some(seq) => {
                INJECTED.incr();
                out = Some(Injected::Fail);
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan = parse("slow batch=3 dur=0.01; fail batch=5;slow").unwrap();
        assert_eq!(
            plan.faults,
            vec![
                ServeFault::Slow {
                    batch: Some(3),
                    dur: Duration::from_millis(10)
                },
                ServeFault::Fail { batch: Some(5) },
                ServeFault::Slow {
                    batch: None,
                    dur: Duration::from_millis(5)
                },
            ]
        );
        assert!(parse("").unwrap().faults.is_empty());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(parse("explode").is_err());
        assert!(parse("slow batch").is_err());
        assert!(parse("slow dur=-1").is_err());
        assert!(parse("slow dur=nan").is_err());
        assert!(parse("fail dur=0.1").is_err());
        assert!(parse("slow what=3").is_err());
    }
}
