//! Deterministic fault injection for the request path — the serving
//! counterpart of `sgnn_bench::faults` (PR 3), same `;`-separated
//! `kind key=value` grammar. Batch-level clauses key on the batcher's
//! batch sequence number; socket-level clauses key on the connection's
//! accept index (0-based, per server instance).
//!
//! ```text
//! slow [batch=K] [dur=S]    sleep S seconds (default 0.005) before batch K
//!                           (every batch when K is omitted) computes —
//!                           drives deadline-timeout and coalescing tests
//! fail [batch=K]            the handler for batch K (every batch when K is
//!                           omitted) fails; all requests in it get a typed
//!                           `Internal` error reply, the server stays up
//! panic [batch=K]           the batcher thread panics on batch K — the
//!                           watchdog must fail the in-flight requests with
//!                           `Internal` and restart the batcher
//! stall [conn=K] [dur=S]    the reader for connection K dribbles: sleep S
//!                           seconds (default 0.05) before every read —
//!                           drives the partial-frame deadline (slowloris)
//! disconnect [conn=K]       connection K is dropped right after accept —
//!                           clients must survive an abrupt hangup
//! torn-write [conn=K]       every reply on connection K is cut mid-frame
//!                           and the socket closed — clients see a torn
//!                           frame, never garbage parsed as a reply
//! corrupt-frame [conn=K]    every reply frame on connection K has one bit
//!                           flipped in its body — clients must detect the
//!                           CRC mismatch and treat the reply as lost
//! ```
//!
//! Faults install process-globally ([`install`]/[`clear`]), or from the
//! `SGNN_SERVE_FAULTS` environment variable; injections count into the
//! `serve.faults.injected` counter.

use std::sync::Mutex;
use std::time::Duration;

use sgnn_obs::Counter;

static INJECTED: Counter = Counter::new("serve.faults.injected");

#[derive(Clone, Debug, PartialEq)]
pub enum ServeFault {
    Slow {
        /// Batch sequence number to hit; `None` = every batch.
        batch: Option<u64>,
        dur: Duration,
    },
    Fail {
        batch: Option<u64>,
    },
    Panic {
        batch: Option<u64>,
    },
    Stall {
        /// Accept-order connection index to hit; `None` = every connection.
        conn: Option<u64>,
        dur: Duration,
    },
    Disconnect {
        conn: Option<u64>,
    },
    TornWrite {
        conn: Option<u64>,
    },
    CorruptFrame {
        conn: Option<u64>,
    },
}

#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    pub faults: Vec<ServeFault>,
}

static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Parses a fault spec. Empty spec = empty plan.
pub fn parse(spec: &str) -> Result<FaultPlan, String> {
    let mut faults = Vec::new();
    for clause in spec.split(';') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let mut parts = clause.split_whitespace();
        let kind = parts.next().expect("clause is non-empty");
        let mut batch = None;
        let mut conn = None;
        let mut dur = None;
        for kv in parts {
            let (key, value) = kv
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{kv}`"))?;
            match key {
                "batch" => {
                    batch = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("bad batch `{value}`"))?,
                    )
                }
                "conn" => {
                    conn = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("bad conn `{value}`"))?,
                    )
                }
                "dur" => {
                    let s = value
                        .parse::<f64>()
                        .map_err(|_| format!("bad dur `{value}`"))?;
                    if !(s >= 0.0 && s.is_finite()) {
                        return Err(format!("dur must be finite and >= 0, got {value}"));
                    }
                    dur = Some(Duration::from_secs_f64(s));
                }
                other => return Err(format!("unknown key `{other}` in `{clause}`")),
            }
        }
        let no_conn = |kind: &str| {
            if conn.is_some() {
                Err(format!("`{kind}` keys on batch, not conn"))
            } else {
                Ok(())
            }
        };
        let no_batch = |kind: &str| {
            if batch.is_some() {
                Err(format!("`{kind}` keys on conn, not batch"))
            } else {
                Ok(())
            }
        };
        let no_dur = |kind: &str| {
            if dur.is_some() {
                Err(format!("`{kind}` takes no dur"))
            } else {
                Ok(())
            }
        };
        match kind {
            "slow" => {
                no_conn(kind)?;
                faults.push(ServeFault::Slow {
                    batch,
                    dur: dur.unwrap_or(Duration::from_millis(5)),
                });
            }
            "fail" => {
                no_conn(kind)?;
                no_dur(kind)?;
                faults.push(ServeFault::Fail { batch });
            }
            "panic" => {
                no_conn(kind)?;
                no_dur(kind)?;
                faults.push(ServeFault::Panic { batch });
            }
            "stall" => {
                no_batch(kind)?;
                faults.push(ServeFault::Stall {
                    conn,
                    dur: dur.unwrap_or(Duration::from_millis(50)),
                });
            }
            "disconnect" => {
                no_batch(kind)?;
                no_dur(kind)?;
                faults.push(ServeFault::Disconnect { conn });
            }
            "torn-write" => {
                no_batch(kind)?;
                no_dur(kind)?;
                faults.push(ServeFault::TornWrite { conn });
            }
            "corrupt-frame" => {
                no_batch(kind)?;
                no_dur(kind)?;
                faults.push(ServeFault::CorruptFrame { conn });
            }
            other => return Err(format!("unknown fault kind `{other}`")),
        }
    }
    Ok(FaultPlan { faults })
}

/// Arms a plan process-globally (replacing any previous one).
pub fn install(plan: FaultPlan) {
    *PLAN.lock().unwrap() = Some(plan);
}

/// Disarms fault injection.
pub fn clear() {
    *PLAN.lock().unwrap() = None;
}

/// Arms from `SGNN_SERVE_FAULTS` when set; panics on a malformed spec (a
/// misspelled fault test is a bug, not a condition to tolerate).
pub fn install_from_env() {
    if let Ok(spec) = std::env::var("SGNN_SERVE_FAULTS") {
        let plan = parse(&spec).unwrap_or_else(|e| panic!("bad SGNN_SERVE_FAULTS: {e}"));
        install(plan);
    }
}

/// What the batch handler must do about an armed fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Injected {
    /// Reply `Internal` to every request in the batch.
    Fail,
    /// Panic the batcher thread (the watchdog's test vector).
    Panic,
}

/// What the reply writer must do about an armed socket fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteFault {
    /// Write only the first half of the frame, then close the socket.
    Torn,
    /// Flip one bit in the frame body before writing it.
    Corrupt,
}

fn matches(key: &Option<u64>, id: u64) -> bool {
    key.is_none() || *key == Some(id)
}

/// Hook called once per batch with its sequence number. `slow` faults sleep
/// here (inline, so queueing backs up exactly as a slow model would);
/// `fail`/`panic` faults return the corresponding [`Injected`] (`panic`
/// wins when both match — it is the stronger failure).
pub fn on_batch(seq: u64) -> Option<Injected> {
    let plan = PLAN.lock().unwrap().clone()?;
    let mut out = None;
    for fault in &plan.faults {
        match fault {
            ServeFault::Slow { batch, dur } if matches(batch, seq) => {
                INJECTED.incr();
                std::thread::sleep(*dur);
            }
            ServeFault::Fail { batch } if matches(batch, seq) => {
                INJECTED.incr();
                if out.is_none() {
                    out = Some(Injected::Fail);
                }
            }
            ServeFault::Panic { batch } if matches(batch, seq) => {
                INJECTED.incr();
                out = Some(Injected::Panic);
            }
            _ => {}
        }
    }
    out
}

/// Hook called once per accepted connection (accept-order index). `true`
/// means the connection must be dropped immediately.
pub fn on_accept(conn: u64) -> bool {
    let Some(plan) = PLAN.lock().unwrap().clone() else {
        return false;
    };
    for fault in &plan.faults {
        if let ServeFault::Disconnect { conn: key } = fault {
            if matches(key, conn) {
                INJECTED.incr();
                return true;
            }
        }
    }
    false
}

/// Hook called before every blocking read on a connection; a `stall`
/// fault returns the injected delay (the reader sleeps, simulating a peer
/// that dribbles bytes).
pub fn on_conn_read(conn: u64) -> Option<Duration> {
    let plan = PLAN.lock().unwrap().clone()?;
    for fault in &plan.faults {
        if let ServeFault::Stall { conn: key, dur } = fault {
            if matches(key, conn) {
                INJECTED.incr();
                return Some(*dur);
            }
        }
    }
    None
}

/// Hook called before every reply write on a connection. `Torn` wins over
/// `Corrupt` when both match (the connection dies either way).
pub fn on_write(conn: u64) -> Option<WriteFault> {
    let plan = PLAN.lock().unwrap().clone()?;
    let mut out = None;
    for fault in &plan.faults {
        match fault {
            ServeFault::TornWrite { conn: key } if matches(key, conn) => {
                INJECTED.incr();
                return Some(WriteFault::Torn);
            }
            ServeFault::CorruptFrame { conn: key } if matches(key, conn) => {
                INJECTED.incr();
                out = Some(WriteFault::Corrupt);
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan = parse("slow batch=3 dur=0.01; fail batch=5;slow").unwrap();
        assert_eq!(
            plan.faults,
            vec![
                ServeFault::Slow {
                    batch: Some(3),
                    dur: Duration::from_millis(10)
                },
                ServeFault::Fail { batch: Some(5) },
                ServeFault::Slow {
                    batch: None,
                    dur: Duration::from_millis(5)
                },
            ]
        );
        assert!(parse("").unwrap().faults.is_empty());
    }

    #[test]
    fn parses_chaos_grammar() {
        let plan =
            parse("stall conn=2 dur=0.1; disconnect conn=5; torn-write conn=7; corrupt-frame conn=1; panic batch=4")
                .unwrap();
        assert_eq!(
            plan.faults,
            vec![
                ServeFault::Stall {
                    conn: Some(2),
                    dur: Duration::from_millis(100)
                },
                ServeFault::Disconnect { conn: Some(5) },
                ServeFault::TornWrite { conn: Some(7) },
                ServeFault::CorruptFrame { conn: Some(1) },
                ServeFault::Panic { batch: Some(4) },
            ]
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(parse("explode").is_err());
        assert!(parse("slow batch").is_err());
        assert!(parse("slow dur=-1").is_err());
        assert!(parse("slow dur=nan").is_err());
        assert!(parse("fail dur=0.1").is_err());
        assert!(parse("slow what=3").is_err());
        // Wrong key domain: batch faults take batch, socket faults conn.
        assert!(parse("slow conn=1").is_err());
        assert!(parse("disconnect batch=1").is_err());
        assert!(parse("torn-write dur=0.1").is_err());
        assert!(parse("panic conn=2").is_err());
    }

    #[test]
    fn socket_hooks_match_on_conn_index() {
        install(
            parse("disconnect conn=3; torn-write conn=4; corrupt-frame conn=5; stall conn=6 dur=0")
                .unwrap(),
        );
        assert!(!on_accept(0));
        assert!(on_accept(3));
        assert_eq!(on_write(4), Some(WriteFault::Torn));
        assert_eq!(on_write(5), Some(WriteFault::Corrupt));
        assert_eq!(on_write(0), None);
        assert_eq!(on_conn_read(6), Some(Duration::ZERO));
        assert_eq!(on_conn_read(1), None);
        clear();
        assert!(!on_accept(3));
    }

    #[test]
    fn panic_wins_over_fail_on_the_same_batch() {
        install(parse("fail batch=2; panic batch=2").unwrap());
        assert_eq!(on_batch(2), Some(Injected::Panic));
        assert_eq!(on_batch(1), None);
        clear();
    }
}
