//! The length-prefixed binary wire protocol.
//!
//! Every frame is a `u32` little-endian body length followed by the body;
//! the body ends in a CRC32-IEEE of everything before it, verified *first*
//! on decode so any single-bit corruption is a deterministic
//! [`WireError::CrcMismatch`] rather than a parse of garbage.
//!
//! Request body:
//!
//! ```text
//! u8   protocol version (2)
//! u8   opcode            1 = Query, 2 = Ping, 3 = Reload
//! u64  nonce             echoed verbatim in the reply
//! u32  deadline_ms       Query only; 0 = no deadline
//! u32  n                 Query only
//! u32×n node ids         Query only
//! u32  crc
//! ```
//!
//! Response body:
//!
//! ```text
//! u8   protocol version (2)
//! u8   status            0 = Logits, 1 = Error, 2 = Pong, 3 = Reloaded
//! u64  nonce
//! u32  rows, u32 cols, f32×rows·cols   (Logits)
//! u8   code, u32 retry_after_ms, u32 len, bytes   (Error)
//! u64  generation                      (Reloaded)
//! u32  crc
//! ```
//!
//! Version 2 added the `Reload`/`Reloaded` admin frames, the `Overloaded`
//! error code, and the `retry_after_ms` hint on every error reply (0 =
//! no hint; nonzero on `Backpressure`/`Overloaded` tells a well-behaved
//! client how long to back off before retrying).

use std::io::{Read, Write};
use std::time::{Duration, Instant};

pub const WIRE_VERSION: u8 = 2;

/// Largest body either side will read. Replies are `rows × classes` floats;
/// with the per-query node cap this is far more than any legal frame.
pub const MAX_BODY: usize = 16 * 1024 * 1024;

const OP_QUERY: u8 = 1;
const OP_PING: u8 = 2;
const OP_RELOAD: u8 = 3;
const ST_LOGITS: u8 = 0;
const ST_ERROR: u8 = 1;
const ST_PONG: u8 = 2;
const ST_RELOADED: u8 = 3;

/// Why a frame body failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Body shorter than its fixed fields claim.
    Truncated,
    /// First byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// Unknown opcode / status byte.
    BadTag(u8),
    /// Body does not match its trailing CRC.
    CrcMismatch,
    /// Structurally invalid (bad error code, trailing bytes, non-UTF-8
    /// message).
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadTag(t) => write!(f, "unknown opcode/status {t}"),
            WireError::CrcMismatch => write!(f, "frame CRC mismatch"),
            WireError::Malformed(why) => write!(f, "malformed frame: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Typed error codes a server can reply with — the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame did not decode; the connection is closed after
    /// this reply (framing may be lost).
    BadFrame,
    /// The batching queue is full; retry later.
    Backpressure,
    /// The per-request deadline expired before the reply was ready.
    Timeout,
    /// A node id is outside the served graph.
    NodeOutOfRange,
    /// More nodes than the server's per-query cap.
    TooLarge,
    /// Server-side failure (e.g. an injected fault).
    Internal,
    /// The server is shutting down.
    Shutdown,
    /// Admission control shed the request: the deadline could not be met
    /// given current queue depth, the per-connection in-flight cap was
    /// exceeded, or the connection limit was reached. The reply carries a
    /// `retry_after_ms` hint.
    Overloaded,
}

impl ErrorCode {
    pub fn to_byte(self) -> u8 {
        match self {
            ErrorCode::BadFrame => 0,
            ErrorCode::Backpressure => 1,
            ErrorCode::Timeout => 2,
            ErrorCode::NodeOutOfRange => 3,
            ErrorCode::TooLarge => 4,
            ErrorCode::Internal => 5,
            ErrorCode::Shutdown => 6,
            ErrorCode::Overloaded => 7,
        }
    }

    pub fn from_byte(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            0 => ErrorCode::BadFrame,
            1 => ErrorCode::Backpressure,
            2 => ErrorCode::Timeout,
            3 => ErrorCode::NodeOutOfRange,
            4 => ErrorCode::TooLarge,
            5 => ErrorCode::Internal,
            6 => ErrorCode::Shutdown,
            7 => ErrorCode::Overloaded,
            other => return Err(WireError::Malformed(format!("error code {other}"))),
        })
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    Query {
        nonce: u64,
        /// 0 = no deadline.
        deadline_ms: u32,
        nodes: Vec<u32>,
    },
    Ping {
        nonce: u64,
    },
    /// Admin frame: atomically swap in the bundle on disk (requires the
    /// server to have been booted with a bundle directory).
    Reload {
        nonce: u64,
    },
}

impl Request {
    pub fn nonce(&self) -> u64 {
        match self {
            Request::Query { nonce, .. } | Request::Ping { nonce } | Request::Reload { nonce } => {
                *nonce
            }
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    Logits {
        nonce: u64,
        rows: u32,
        cols: u32,
        /// Row-major `rows × cols` logits, bit-exact f32.
        data: Vec<f32>,
    },
    Error {
        nonce: u64,
        code: ErrorCode,
        /// Backoff hint in milliseconds; 0 = none. Set on shed/overload
        /// replies so clients can retry intelligently.
        retry_after_ms: u32,
        msg: String,
    },
    Pong {
        nonce: u64,
    },
    /// The bundle swap succeeded; `generation` is the new bundle
    /// generation tag (monotonic per server).
    Reloaded {
        nonce: u64,
        generation: u64,
    },
}

impl Response {
    pub fn nonce(&self) -> u64 {
        match self {
            Response::Logits { nonce, .. }
            | Response::Error { nonce, .. }
            | Response::Pong { nonce }
            | Response::Reloaded { nonce, .. } => *nonce,
        }
    }
}

fn seal(mut body: Vec<u8>) -> Vec<u8> {
    let crc = sgnn_train::checkpoint::crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Encodes a request as a complete frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut b = Vec::new();
    b.push(WIRE_VERSION);
    match req {
        Request::Query {
            nonce,
            deadline_ms,
            nodes,
        } => {
            b.push(OP_QUERY);
            b.extend_from_slice(&nonce.to_le_bytes());
            b.extend_from_slice(&deadline_ms.to_le_bytes());
            b.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
            for &id in nodes {
                b.extend_from_slice(&id.to_le_bytes());
            }
        }
        Request::Ping { nonce } => {
            b.push(OP_PING);
            b.extend_from_slice(&nonce.to_le_bytes());
        }
        Request::Reload { nonce } => {
            b.push(OP_RELOAD);
            b.extend_from_slice(&nonce.to_le_bytes());
        }
    }
    seal(b)
}

/// Encodes a response as a complete frame (length prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut b = Vec::new();
    b.push(WIRE_VERSION);
    match resp {
        Response::Logits {
            nonce,
            rows,
            cols,
            data,
        } => {
            b.push(ST_LOGITS);
            b.extend_from_slice(&nonce.to_le_bytes());
            b.extend_from_slice(&rows.to_le_bytes());
            b.extend_from_slice(&cols.to_le_bytes());
            for &v in data {
                b.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Response::Error {
            nonce,
            code,
            retry_after_ms,
            msg,
        } => {
            b.push(ST_ERROR);
            b.extend_from_slice(&nonce.to_le_bytes());
            b.push(code.to_byte());
            b.extend_from_slice(&retry_after_ms.to_le_bytes());
            b.extend_from_slice(&(msg.len() as u32).to_le_bytes());
            b.extend_from_slice(msg.as_bytes());
        }
        Response::Pong { nonce } => {
            b.push(ST_PONG);
            b.extend_from_slice(&nonce.to_le_bytes());
        }
        Response::Reloaded { nonce, generation } => {
            b.push(ST_RELOADED);
            b.extend_from_slice(&nonce.to_le_bytes());
            b.extend_from_slice(&generation.to_le_bytes());
        }
    }
    seal(b)
}

/// A cursor over a CRC-verified body.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.b.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos != self.b.len() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes",
                self.b.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Verifies the trailing CRC and returns the payload before it.
fn check_crc(body: &[u8]) -> Result<&[u8], WireError> {
    if body.len() < 4 {
        return Err(WireError::Truncated);
    }
    let (payload, tail) = body.split_at(body.len() - 4);
    let want = u32::from_le_bytes(tail.try_into().unwrap());
    if sgnn_train::checkpoint::crc32(payload) != want {
        return Err(WireError::CrcMismatch);
    }
    Ok(payload)
}

/// Decodes a request body (everything after the length prefix).
pub fn decode_request(body: &[u8]) -> Result<Request, WireError> {
    let payload = check_crc(body)?;
    let mut c = Cur { b: payload, pos: 0 };
    let v = c.u8()?;
    if v != WIRE_VERSION {
        return Err(WireError::BadVersion(v));
    }
    let op = c.u8()?;
    let req = match op {
        OP_QUERY => {
            let nonce = c.u64()?;
            let deadline_ms = c.u32()?;
            let n = c.u32()? as usize;
            // Cap before allocating: `n` is attacker-controlled.
            if n * 4 > payload.len() {
                return Err(WireError::Truncated);
            }
            let mut nodes = Vec::with_capacity(n);
            for _ in 0..n {
                nodes.push(c.u32()?);
            }
            Request::Query {
                nonce,
                deadline_ms,
                nodes,
            }
        }
        OP_PING => Request::Ping { nonce: c.u64()? },
        OP_RELOAD => Request::Reload { nonce: c.u64()? },
        other => return Err(WireError::BadTag(other)),
    };
    c.done()?;
    Ok(req)
}

/// Decodes a response body (everything after the length prefix).
pub fn decode_response(body: &[u8]) -> Result<Response, WireError> {
    let payload = check_crc(body)?;
    let mut c = Cur { b: payload, pos: 0 };
    let v = c.u8()?;
    if v != WIRE_VERSION {
        return Err(WireError::BadVersion(v));
    }
    let st = c.u8()?;
    let resp = match st {
        ST_LOGITS => {
            let nonce = c.u64()?;
            let rows = c.u32()?;
            let cols = c.u32()?;
            let total = (rows as usize)
                .checked_mul(cols as usize)
                .ok_or(WireError::Malformed("logit shape overflow".into()))?;
            if total * 4 > payload.len() {
                return Err(WireError::Truncated);
            }
            let mut data = Vec::with_capacity(total);
            for _ in 0..total {
                data.push(f32::from_bits(c.u32()?));
            }
            Response::Logits {
                nonce,
                rows,
                cols,
                data,
            }
        }
        ST_ERROR => {
            let nonce = c.u64()?;
            let code = ErrorCode::from_byte(c.u8()?)?;
            let retry_after_ms = c.u32()?;
            let len = c.u32()? as usize;
            if len > payload.len() {
                return Err(WireError::Truncated);
            }
            let msg = String::from_utf8(c.take(len)?.to_vec())
                .map_err(|_| WireError::Malformed("error message not UTF-8".into()))?;
            Response::Error {
                nonce,
                code,
                retry_after_ms,
                msg,
            }
        }
        ST_PONG => Response::Pong { nonce: c.u64()? },
        ST_RELOADED => Response::Reloaded {
            nonce: c.u64()?,
            generation: c.u64()?,
        },
        other => return Err(WireError::BadTag(other)),
    };
    c.done()?;
    Ok(resp)
}

/// Transport-level failure while reading one frame.
#[derive(Debug)]
pub enum FrameIo {
    /// Socket error (including timeouts surfaced as
    /// `WouldBlock`/`TimedOut`, and torn frames as `UnexpectedEof`).
    Io(std::io::Error),
    /// The declared body length exceeds `max_body` — the frame is not read.
    TooLarge(u32),
}

/// Reads one length-prefixed frame body. `Ok(None)` is a clean EOF (peer
/// closed between frames); EOF mid-frame is `FrameIo::Io(UnexpectedEof)`.
pub fn read_frame<R: Read>(r: &mut R, max_body: usize) -> Result<Option<Vec<u8>>, FrameIo> {
    let mut len_buf = [0u8; 4];
    // A clean close before any length byte is a normal end of stream.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(FrameIo::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                )));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameIo::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len as usize > max_body {
        return Err(FrameIo::TooLarge(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(FrameIo::Io)?;
    Ok(Some(body))
}

/// Writes one pre-encoded frame (as produced by the `encode_*` functions).
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> std::io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// Outcome of one [`FrameReader::poll`] call.
#[derive(Debug)]
pub enum FramePoll {
    /// A complete frame body (everything after the length prefix).
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary (peer closed between frames).
    Eof,
    /// The read timed out with no frame in progress, or with a frame in
    /// progress but still inside the partial-frame deadline — poll again.
    Pending,
    /// A frame started but did not complete within the partial-frame
    /// deadline: a stalled or malicious (slowloris) peer.
    Stalled,
    /// Declared body length exceeds the cap — the body is never read.
    TooLarge(u32),
    /// Transport error, including EOF mid-frame (a torn frame).
    Io(std::io::Error),
}

/// An incremental frame reader for sockets with a read timeout.
///
/// The blocking [`read_frame`] loses partially read bytes when a read
/// times out mid-frame, which both corrupts framing on a slow-but-honest
/// peer and lets a malicious one hold a reader thread forever by dripping
/// one byte per timeout (slowloris). `FrameReader` keeps the partial
/// frame across timeouts and enforces a wall-clock deadline from the
/// first byte of a frame to its last: a peer that starts a frame must
/// finish it within `frame_deadline` or the poll reports
/// [`FramePoll::Stalled`].
#[derive(Default)]
pub struct FrameReader {
    len_buf: [u8; 4],
    got_len: usize,
    body: Vec<u8>,
    got_body: usize,
    /// Set when the first byte of a frame arrives; cleared on completion.
    started: Option<Instant>,
}

impl FrameReader {
    pub fn new() -> Self {
        Self::default()
    }

    /// True if a frame is partially read (the peer owes us bytes).
    pub fn mid_frame(&self) -> bool {
        self.started.is_some()
    }

    /// Makes as much progress as one blocking read (with the socket's
    /// read timeout) allows. Call in a loop; `Pending` is the idle tick.
    pub fn poll<R: Read>(
        &mut self,
        r: &mut R,
        max_body: usize,
        frame_deadline: Duration,
    ) -> FramePoll {
        loop {
            if self.got_len < 4 {
                match r.read(&mut self.len_buf[self.got_len..]) {
                    Ok(0) => {
                        return if self.started.is_none() {
                            FramePoll::Eof
                        } else {
                            FramePoll::Io(std::io::Error::new(
                                std::io::ErrorKind::UnexpectedEof,
                                "eof inside frame length",
                            ))
                        };
                    }
                    Ok(n) => {
                        self.started.get_or_insert_with(Instant::now);
                        self.got_len += n;
                        if self.got_len == 4 {
                            let len = u32::from_le_bytes(self.len_buf);
                            if len as usize > max_body {
                                self.reset();
                                return FramePoll::TooLarge(len);
                            }
                            self.body = vec![0u8; len as usize];
                            self.got_body = 0;
                        }
                        continue;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        return self.pending_or_stalled(frame_deadline);
                    }
                    Err(e) => return FramePoll::Io(e),
                }
            }
            // Length known; body may be zero-sized.
            if self.got_body < self.body.len() {
                match r.read(&mut self.body[self.got_body..]) {
                    Ok(0) => {
                        return FramePoll::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "eof inside frame body",
                        ));
                    }
                    Ok(n) => {
                        self.got_body += n;
                        continue;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        return self.pending_or_stalled(frame_deadline);
                    }
                    Err(e) => return FramePoll::Io(e),
                }
            }
            let body = std::mem::take(&mut self.body);
            self.reset();
            return FramePoll::Frame(body);
        }
    }

    fn pending_or_stalled(&mut self, frame_deadline: Duration) -> FramePoll {
        match self.started {
            Some(t0) if t0.elapsed() >= frame_deadline => {
                self.reset();
                FramePoll::Stalled
            }
            _ => FramePoll::Pending,
        }
    }

    fn reset(&mut self) {
        self.got_len = 0;
        self.got_body = 0;
        self.body = Vec::new();
        self.started = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let reqs = [
            Request::Query {
                nonce: 7,
                deadline_ms: 250,
                nodes: vec![0, 3, 3, 9],
            },
            Request::Ping { nonce: u64::MAX },
            Request::Reload { nonce: 42 },
        ];
        for req in reqs {
            let frame = encode_request(&req);
            let body = &frame[4..];
            assert_eq!(decode_request(body).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trip() {
        let resps = [
            Response::Logits {
                nonce: 1,
                rows: 2,
                cols: 3,
                data: vec![0.0, -1.5, f32::MIN_POSITIVE, 3.25, -0.0, 1e30],
            },
            Response::Error {
                nonce: 2,
                code: ErrorCode::Backpressure,
                retry_after_ms: 7,
                msg: "queue full".into(),
            },
            Response::Error {
                nonce: 4,
                code: ErrorCode::Overloaded,
                retry_after_ms: 250,
                msg: "shed".into(),
            },
            Response::Pong { nonce: 3 },
            Response::Reloaded {
                nonce: 5,
                generation: 9,
            },
        ];
        for resp in resps {
            let frame = encode_response(&resp);
            assert_eq!(decode_response(&frame[4..]).unwrap(), resp);
        }
    }

    #[test]
    fn corrupt_body_is_crc_mismatch() {
        let frame = encode_request(&Request::Query {
            nonce: 9,
            deadline_ms: 0,
            nodes: vec![1, 2, 3],
        });
        for bit in 0..(frame.len() - 4) * 8 {
            let mut bad = frame[4..].to_vec();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(
                decode_request(&bad).unwrap_err(),
                WireError::CrcMismatch,
                "bit {bit}"
            );
        }
    }

    #[test]
    fn frame_io_round_trip_and_caps() {
        let frame = encode_request(&Request::Ping { nonce: 5 });
        let mut cur = std::io::Cursor::new(frame.clone());
        let body = read_frame(&mut cur, MAX_BODY).unwrap().unwrap();
        assert_eq!(decode_request(&body).unwrap(), Request::Ping { nonce: 5 });
        // Clean EOF after the frame.
        assert!(read_frame(&mut cur, MAX_BODY).unwrap().is_none());
        // Oversized declared length is rejected without reading the body.
        let mut huge = std::io::Cursor::new((MAX_BODY as u32 + 1).to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut huge, MAX_BODY),
            Err(FrameIo::TooLarge(_))
        ));
        // Torn frame: length says 10, only 3 bytes follow.
        let mut torn = std::io::Cursor::new(vec![10, 0, 0, 0, 1, 2, 3]);
        assert!(matches!(
            read_frame(&mut torn, MAX_BODY),
            Err(FrameIo::Io(_))
        ));
    }

    /// A reader that yields `chunk` bytes of `data` per call, interleaving
    /// a `WouldBlock` between chunks — a socket timing out mid-frame.
    /// `hang_at_end` makes it time out forever once the data is spent (a
    /// slowloris peer that goes silent) instead of closing cleanly.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        block_next: bool,
        hang_at_end: bool,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return if self.hang_at_end {
                    Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "tick"))
                } else {
                    Ok(0)
                };
            }
            if self.block_next {
                self.block_next = false;
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "tick"));
            }
            self.block_next = true;
            let n = self.chunk.min(self.data.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_survives_byte_dribble_across_timeouts() {
        // One byte per read with a timeout between every pair: the
        // blocking `read_frame` would lose the partial length here; the
        // stateful reader must reassemble the frame exactly.
        let frame = encode_request(&Request::Query {
            nonce: 77,
            deadline_ms: 5,
            nodes: vec![1, 2, 3, 4, 5],
        });
        let mut r = Dribble {
            data: frame.clone(),
            pos: 0,
            chunk: 1,
            block_next: false,
            hang_at_end: false,
        };
        let mut fr = FrameReader::new();
        let deadline = Duration::from_secs(30);
        loop {
            match fr.poll(&mut r, MAX_BODY, deadline) {
                FramePoll::Frame(body) => {
                    assert_eq!(&frame[4..], &body[..]);
                    break;
                }
                FramePoll::Pending => continue,
                other => panic!("unexpected poll outcome {other:?}"),
            }
        }
        assert!(!fr.mid_frame());
        match fr.poll(&mut r, MAX_BODY, deadline) {
            FramePoll::Eof => {}
            other => panic!("expected clean EOF, got {other:?}"),
        }
    }

    #[test]
    fn frame_reader_flags_stalled_partial_frame() {
        // Two bytes of length then silence: once the deadline passes, the
        // reader reports Stalled instead of spinning forever.
        let mut r = Dribble {
            data: vec![10, 0],
            pos: 0,
            chunk: 2,
            block_next: false,
            hang_at_end: true,
        };
        let mut fr = FrameReader::new();
        assert!(matches!(
            fr.poll(&mut r, MAX_BODY, Duration::from_secs(30)),
            FramePoll::Pending
        ));
        assert!(fr.mid_frame());
        std::thread::sleep(Duration::from_millis(5));
        assert!(matches!(
            fr.poll(&mut r, MAX_BODY, Duration::from_millis(1)),
            FramePoll::Stalled
        ));
        assert!(!fr.mid_frame(), "stall must reset the reader");
    }

    #[test]
    fn frame_reader_rejects_oversized_and_torn_frames() {
        let mut r = std::io::Cursor::new((MAX_BODY as u32 + 1).to_le_bytes().to_vec());
        let mut fr = FrameReader::new();
        assert!(matches!(
            fr.poll(&mut r, MAX_BODY, Duration::from_secs(1)),
            FramePoll::TooLarge(_)
        ));
        // Torn: length 10, three bytes, then EOF.
        let mut r = std::io::Cursor::new(vec![10, 0, 0, 0, 1, 2, 3]);
        let mut fr = FrameReader::new();
        assert!(matches!(
            fr.poll(&mut r, MAX_BODY, Duration::from_secs(1)),
            FramePoll::Io(_)
        ));
    }
}
