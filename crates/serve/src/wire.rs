//! The length-prefixed binary wire protocol.
//!
//! Every frame is a `u32` little-endian body length followed by the body;
//! the body ends in a CRC32-IEEE of everything before it, verified *first*
//! on decode so any single-bit corruption is a deterministic
//! [`WireError::CrcMismatch`] rather than a parse of garbage.
//!
//! Request body:
//!
//! ```text
//! u8   protocol version (1)
//! u8   opcode            1 = Query, 2 = Ping
//! u64  nonce             echoed verbatim in the reply
//! u32  deadline_ms       Query only; 0 = no deadline
//! u32  n                 Query only
//! u32×n node ids         Query only
//! u32  crc
//! ```
//!
//! Response body:
//!
//! ```text
//! u8   protocol version (1)
//! u8   status            0 = Logits, 1 = Error, 2 = Pong
//! u64  nonce
//! u32  rows, u32 cols, f32×rows·cols   (Logits)
//! u8   code, u32 len, bytes            (Error)
//! u32  crc
//! ```

use std::io::{Read, Write};

pub const WIRE_VERSION: u8 = 1;

/// Largest body either side will read. Replies are `rows × classes` floats;
/// with the per-query node cap this is far more than any legal frame.
pub const MAX_BODY: usize = 16 * 1024 * 1024;

const OP_QUERY: u8 = 1;
const OP_PING: u8 = 2;
const ST_LOGITS: u8 = 0;
const ST_ERROR: u8 = 1;
const ST_PONG: u8 = 2;

/// Why a frame body failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Body shorter than its fixed fields claim.
    Truncated,
    /// First byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// Unknown opcode / status byte.
    BadTag(u8),
    /// Body does not match its trailing CRC.
    CrcMismatch,
    /// Structurally invalid (bad error code, trailing bytes, non-UTF-8
    /// message).
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadTag(t) => write!(f, "unknown opcode/status {t}"),
            WireError::CrcMismatch => write!(f, "frame CRC mismatch"),
            WireError::Malformed(why) => write!(f, "malformed frame: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Typed error codes a server can reply with — the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame did not decode; the connection is closed after
    /// this reply (framing may be lost).
    BadFrame,
    /// The batching queue is full; retry later.
    Backpressure,
    /// The per-request deadline expired before the reply was ready.
    Timeout,
    /// A node id is outside the served graph.
    NodeOutOfRange,
    /// More nodes than the server's per-query cap.
    TooLarge,
    /// Server-side failure (e.g. an injected fault).
    Internal,
    /// The server is shutting down.
    Shutdown,
}

impl ErrorCode {
    pub fn to_byte(self) -> u8 {
        match self {
            ErrorCode::BadFrame => 0,
            ErrorCode::Backpressure => 1,
            ErrorCode::Timeout => 2,
            ErrorCode::NodeOutOfRange => 3,
            ErrorCode::TooLarge => 4,
            ErrorCode::Internal => 5,
            ErrorCode::Shutdown => 6,
        }
    }

    pub fn from_byte(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            0 => ErrorCode::BadFrame,
            1 => ErrorCode::Backpressure,
            2 => ErrorCode::Timeout,
            3 => ErrorCode::NodeOutOfRange,
            4 => ErrorCode::TooLarge,
            5 => ErrorCode::Internal,
            6 => ErrorCode::Shutdown,
            other => return Err(WireError::Malformed(format!("error code {other}"))),
        })
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    Query {
        nonce: u64,
        /// 0 = no deadline.
        deadline_ms: u32,
        nodes: Vec<u32>,
    },
    Ping {
        nonce: u64,
    },
}

impl Request {
    pub fn nonce(&self) -> u64 {
        match self {
            Request::Query { nonce, .. } | Request::Ping { nonce } => *nonce,
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    Logits {
        nonce: u64,
        rows: u32,
        cols: u32,
        /// Row-major `rows × cols` logits, bit-exact f32.
        data: Vec<f32>,
    },
    Error {
        nonce: u64,
        code: ErrorCode,
        msg: String,
    },
    Pong {
        nonce: u64,
    },
}

impl Response {
    pub fn nonce(&self) -> u64 {
        match self {
            Response::Logits { nonce, .. }
            | Response::Error { nonce, .. }
            | Response::Pong { nonce } => *nonce,
        }
    }
}

fn seal(mut body: Vec<u8>) -> Vec<u8> {
    let crc = sgnn_train::checkpoint::crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Encodes a request as a complete frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut b = Vec::new();
    b.push(WIRE_VERSION);
    match req {
        Request::Query {
            nonce,
            deadline_ms,
            nodes,
        } => {
            b.push(OP_QUERY);
            b.extend_from_slice(&nonce.to_le_bytes());
            b.extend_from_slice(&deadline_ms.to_le_bytes());
            b.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
            for &id in nodes {
                b.extend_from_slice(&id.to_le_bytes());
            }
        }
        Request::Ping { nonce } => {
            b.push(OP_PING);
            b.extend_from_slice(&nonce.to_le_bytes());
        }
    }
    seal(b)
}

/// Encodes a response as a complete frame (length prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut b = Vec::new();
    b.push(WIRE_VERSION);
    match resp {
        Response::Logits {
            nonce,
            rows,
            cols,
            data,
        } => {
            b.push(ST_LOGITS);
            b.extend_from_slice(&nonce.to_le_bytes());
            b.extend_from_slice(&rows.to_le_bytes());
            b.extend_from_slice(&cols.to_le_bytes());
            for &v in data {
                b.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Response::Error { nonce, code, msg } => {
            b.push(ST_ERROR);
            b.extend_from_slice(&nonce.to_le_bytes());
            b.push(code.to_byte());
            b.extend_from_slice(&(msg.len() as u32).to_le_bytes());
            b.extend_from_slice(msg.as_bytes());
        }
        Response::Pong { nonce } => {
            b.push(ST_PONG);
            b.extend_from_slice(&nonce.to_le_bytes());
        }
    }
    seal(b)
}

/// A cursor over a CRC-verified body.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.b.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos != self.b.len() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes",
                self.b.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Verifies the trailing CRC and returns the payload before it.
fn check_crc(body: &[u8]) -> Result<&[u8], WireError> {
    if body.len() < 4 {
        return Err(WireError::Truncated);
    }
    let (payload, tail) = body.split_at(body.len() - 4);
    let want = u32::from_le_bytes(tail.try_into().unwrap());
    if sgnn_train::checkpoint::crc32(payload) != want {
        return Err(WireError::CrcMismatch);
    }
    Ok(payload)
}

/// Decodes a request body (everything after the length prefix).
pub fn decode_request(body: &[u8]) -> Result<Request, WireError> {
    let payload = check_crc(body)?;
    let mut c = Cur { b: payload, pos: 0 };
    let v = c.u8()?;
    if v != WIRE_VERSION {
        return Err(WireError::BadVersion(v));
    }
    let op = c.u8()?;
    let req = match op {
        OP_QUERY => {
            let nonce = c.u64()?;
            let deadline_ms = c.u32()?;
            let n = c.u32()? as usize;
            // Cap before allocating: `n` is attacker-controlled.
            if n * 4 > payload.len() {
                return Err(WireError::Truncated);
            }
            let mut nodes = Vec::with_capacity(n);
            for _ in 0..n {
                nodes.push(c.u32()?);
            }
            Request::Query {
                nonce,
                deadline_ms,
                nodes,
            }
        }
        OP_PING => Request::Ping { nonce: c.u64()? },
        other => return Err(WireError::BadTag(other)),
    };
    c.done()?;
    Ok(req)
}

/// Decodes a response body (everything after the length prefix).
pub fn decode_response(body: &[u8]) -> Result<Response, WireError> {
    let payload = check_crc(body)?;
    let mut c = Cur { b: payload, pos: 0 };
    let v = c.u8()?;
    if v != WIRE_VERSION {
        return Err(WireError::BadVersion(v));
    }
    let st = c.u8()?;
    let resp = match st {
        ST_LOGITS => {
            let nonce = c.u64()?;
            let rows = c.u32()?;
            let cols = c.u32()?;
            let total = (rows as usize)
                .checked_mul(cols as usize)
                .ok_or(WireError::Malformed("logit shape overflow".into()))?;
            if total * 4 > payload.len() {
                return Err(WireError::Truncated);
            }
            let mut data = Vec::with_capacity(total);
            for _ in 0..total {
                data.push(f32::from_bits(c.u32()?));
            }
            Response::Logits {
                nonce,
                rows,
                cols,
                data,
            }
        }
        ST_ERROR => {
            let nonce = c.u64()?;
            let code = ErrorCode::from_byte(c.u8()?)?;
            let len = c.u32()? as usize;
            if len > payload.len() {
                return Err(WireError::Truncated);
            }
            let msg = String::from_utf8(c.take(len)?.to_vec())
                .map_err(|_| WireError::Malformed("error message not UTF-8".into()))?;
            Response::Error { nonce, code, msg }
        }
        ST_PONG => Response::Pong { nonce: c.u64()? },
        other => return Err(WireError::BadTag(other)),
    };
    c.done()?;
    Ok(resp)
}

/// Transport-level failure while reading one frame.
#[derive(Debug)]
pub enum FrameIo {
    /// Socket error (including timeouts surfaced as
    /// `WouldBlock`/`TimedOut`, and torn frames as `UnexpectedEof`).
    Io(std::io::Error),
    /// The declared body length exceeds `max_body` — the frame is not read.
    TooLarge(u32),
}

/// Reads one length-prefixed frame body. `Ok(None)` is a clean EOF (peer
/// closed between frames); EOF mid-frame is `FrameIo::Io(UnexpectedEof)`.
pub fn read_frame<R: Read>(r: &mut R, max_body: usize) -> Result<Option<Vec<u8>>, FrameIo> {
    let mut len_buf = [0u8; 4];
    // A clean close before any length byte is a normal end of stream.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(FrameIo::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                )));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameIo::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len as usize > max_body {
        return Err(FrameIo::TooLarge(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(FrameIo::Io)?;
    Ok(Some(body))
}

/// Writes one pre-encoded frame (as produced by the `encode_*` functions).
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> std::io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let reqs = [
            Request::Query {
                nonce: 7,
                deadline_ms: 250,
                nodes: vec![0, 3, 3, 9],
            },
            Request::Ping { nonce: u64::MAX },
        ];
        for req in reqs {
            let frame = encode_request(&req);
            let body = &frame[4..];
            assert_eq!(decode_request(body).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trip() {
        let resps = [
            Response::Logits {
                nonce: 1,
                rows: 2,
                cols: 3,
                data: vec![0.0, -1.5, f32::MIN_POSITIVE, 3.25, -0.0, 1e30],
            },
            Response::Error {
                nonce: 2,
                code: ErrorCode::Backpressure,
                msg: "queue full".into(),
            },
            Response::Pong { nonce: 3 },
        ];
        for resp in resps {
            let frame = encode_response(&resp);
            assert_eq!(decode_response(&frame[4..]).unwrap(), resp);
        }
    }

    #[test]
    fn corrupt_body_is_crc_mismatch() {
        let frame = encode_request(&Request::Query {
            nonce: 9,
            deadline_ms: 0,
            nodes: vec![1, 2, 3],
        });
        for bit in 0..(frame.len() - 4) * 8 {
            let mut bad = frame[4..].to_vec();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(
                decode_request(&bad).unwrap_err(),
                WireError::CrcMismatch,
                "bit {bit}"
            );
        }
    }

    #[test]
    fn frame_io_round_trip_and_caps() {
        let frame = encode_request(&Request::Ping { nonce: 5 });
        let mut cur = std::io::Cursor::new(frame.clone());
        let body = read_frame(&mut cur, MAX_BODY).unwrap().unwrap();
        assert_eq!(decode_request(&body).unwrap(), Request::Ping { nonce: 5 });
        // Clean EOF after the frame.
        assert!(read_frame(&mut cur, MAX_BODY).unwrap().is_none());
        // Oversized declared length is rejected without reading the body.
        let mut huge = std::io::Cursor::new((MAX_BODY as u32 + 1).to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut huge, MAX_BODY),
            Err(FrameIo::TooLarge(_))
        ));
        // Torn frame: length says 10, only 3 bytes follow.
        let mut torn = std::io::Cursor::new(vec![10, 0, 0, 0, 1, 2, 3]);
        assert!(matches!(
            read_frame(&mut torn, MAX_BODY),
            Err(FrameIo::Io(_))
        ));
    }
}
