//! A blocking client for the serve protocol: one connection, one
//! outstanding request at a time, nonce-checked replies.
//!
//! Retry policy lives here too: [`Backoff`] is a deterministic, seeded,
//! capped exponential backoff with full jitter — no wall-clock seeding,
//! so a load run with a fixed seed sleeps the same schedule every time.
//! [`Client::connect_retry`] survives a server that is mid-reload or
//! briefly over its connection limit; [`Client::query_retry`] retries the
//! two *retryable* typed errors (`Backpressure`, `Overloaded`), honoring
//! the server's `retry_after_ms` hint.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use sgnn_dense::DMat;

use crate::wire::{
    self, decode_response, encode_request, ErrorCode, FrameIo, Request, Response, WireError,
    MAX_BODY,
};

/// Why a client call failed (transport or protocol — a typed *error reply*
/// from the server is not a `ClientError`, it's [`Reply::Error`]).
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    Wire(WireError),
    /// The reply's echoed nonce does not match the request — a cross-wired
    /// response, which the e2e suite treats as fatal.
    NonceMismatch {
        sent: u64,
        got: u64,
    },
    /// Server closed the connection without replying.
    Closed,
    /// Got a Pong where logits were expected (or vice versa).
    UnexpectedReply,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O: {e}"),
            ClientError::Wire(e) => write!(f, "client decode: {e}"),
            ClientError::NonceMismatch { sent, got } => {
                write!(f, "nonce mismatch: sent {sent}, got {got}")
            }
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::UnexpectedReply => write!(f, "unexpected reply kind"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A query's outcome: logits, or one of the server's typed errors.
#[derive(Debug, PartialEq)]
pub enum Reply {
    /// Row-major logits, one row per requested node, in request order.
    Logits(DMat),
    Error {
        code: ErrorCode,
        /// Server backoff hint; 0 = none.
        retry_after_ms: u32,
        msg: String,
    },
    /// A `Reload` admin request succeeded; the server is now serving
    /// bundle `generation`.
    Reloaded { generation: u64 },
}

/// Deterministic capped exponential backoff with full jitter.
///
/// The delay before attempt `n` is uniform in `[window/2, window]` where
/// `window = min(cap, base × 2ⁿ)` — jittered so a thundering herd of
/// rejected clients does not re-arrive in lockstep, deterministic (seeded
/// LCG, same constants as the loadgen id stream) so runs reproduce.
#[derive(Clone, Debug)]
pub struct Backoff {
    state: u64,
    base: Duration,
    cap: Duration,
    attempt: u32,
}

impl Backoff {
    pub fn new(seed: u64, base: Duration, cap: Duration) -> Self {
        Self {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5D,
            base: base.max(Duration::from_micros(1)),
            cap,
            attempt: 0,
        }
    }

    /// Sensible defaults for talking to a local server: 1ms base, 100ms cap.
    pub fn for_seed(seed: u64) -> Self {
        Self::new(seed, Duration::from_millis(1), Duration::from_millis(100))
    }

    /// Forgets accumulated attempts (call after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Attempts taken since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    fn rand01(&mut self) -> f64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.state >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The next delay in the schedule (advances the attempt counter).
    pub fn next_delay(&mut self) -> Duration {
        self.next_delay_hinted(0)
    }

    /// Like [`next_delay`](Self::next_delay), but never shorter than the
    /// server's `retry_after_ms` hint (still capped) — a client that is
    /// told when capacity returns should not knock earlier.
    pub fn next_delay_hinted(&mut self, retry_after_ms: u32) -> Duration {
        let exp = self.attempt.min(16);
        self.attempt = self.attempt.saturating_add(1);
        let window = self
            .base
            .saturating_mul(1u32 << exp.min(31))
            .min(self.cap)
            .max(self.base);
        let jittered = window.mul_f64(0.5 + 0.5 * self.rand01());
        let hint = Duration::from_millis(retry_after_ms as u64).min(self.cap);
        jittered.max(hint)
    }
}

pub struct Client {
    stream: TcpStream,
    next_nonce: u64,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            next_nonce: 1,
        })
    }

    /// Like [`connect`](Self::connect), but gives up after `timeout`.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            next_nonce: 1,
        })
    }

    /// Bounded connect retry: up to `attempts` tries, sleeping a jittered
    /// backoff between them. Lets load clients survive a server that is
    /// mid-reload, briefly over `max_conns`, or still binding.
    pub fn connect_retry(
        addr: SocketAddr,
        attempts: u32,
        backoff: &mut Backoff,
    ) -> std::io::Result<Self> {
        let mut last = std::io::Error::other("no connect attempts");
        for attempt in 0..attempts.max(1) {
            match Self::connect_timeout(addr, Duration::from_secs(5)) {
                Ok(c) => return Ok(c),
                Err(e) => last = e,
            }
            if attempt + 1 < attempts {
                std::thread::sleep(backoff.next_delay());
            }
        }
        Err(last)
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        let sent = req.nonce();
        wire::write_frame(&mut self.stream, &encode_request(req))?;
        let body = match wire::read_frame(&mut self.stream, MAX_BODY) {
            Ok(Some(body)) => body,
            Ok(None) => return Err(ClientError::Closed),
            Err(FrameIo::Io(e)) => return Err(ClientError::Io(e)),
            Err(FrameIo::TooLarge(_)) => {
                return Err(ClientError::Wire(WireError::Malformed(
                    "oversized reply".into(),
                )))
            }
        };
        let resp = decode_response(&body).map_err(ClientError::Wire)?;
        // `BadFrame` replies carry nonce 0 (the server could not trust the
        // frame enough to echo anything); everything else must echo ours.
        let got = resp.nonce();
        let is_badframe = matches!(
            resp,
            Response::Error {
                code: ErrorCode::BadFrame,
                ..
            }
        );
        if got != sent && !is_badframe {
            return Err(ClientError::NonceMismatch { sent, got });
        }
        Ok(resp)
    }

    fn fresh_nonce(&mut self) -> u64 {
        let n = self.next_nonce;
        self.next_nonce += 1;
        n
    }

    /// Queries logits for `nodes` with no deadline.
    pub fn query(&mut self, nodes: &[u32]) -> Result<Reply, ClientError> {
        self.query_deadline(nodes, 0)
    }

    /// Queries logits for `nodes`; `deadline_ms > 0` asks the server to
    /// reply `Timeout` instead of serving a stale answer (and licenses
    /// the server to shed the request with `Overloaded` when the deadline
    /// is predicted unreachable).
    pub fn query_deadline(
        &mut self,
        nodes: &[u32],
        deadline_ms: u32,
    ) -> Result<Reply, ClientError> {
        let req = Request::Query {
            nonce: self.fresh_nonce(),
            deadline_ms,
            nodes: nodes.to_vec(),
        };
        match self.roundtrip(&req)? {
            Response::Logits {
                rows, cols, data, ..
            } => {
                if data.len() != rows as usize * cols as usize {
                    return Err(ClientError::Wire(WireError::Malformed(
                        "logit shape/data mismatch".into(),
                    )));
                }
                Ok(Reply::Logits(DMat::from_vec(
                    rows as usize,
                    cols as usize,
                    data,
                )))
            }
            Response::Error {
                code,
                retry_after_ms,
                msg,
                ..
            } => Ok(Reply::Error {
                code,
                retry_after_ms,
                msg,
            }),
            Response::Pong { .. } | Response::Reloaded { .. } => Err(ClientError::UnexpectedReply),
        }
    }

    /// [`query_deadline`](Self::query_deadline) with bounded retry on the
    /// retryable errors (`Backpressure`/`Overloaded`), sleeping the
    /// jittered backoff (at least the server's hint) between attempts.
    /// Returns the final reply and the number of retries taken.
    pub fn query_retry(
        &mut self,
        nodes: &[u32],
        deadline_ms: u32,
        max_attempts: u32,
        backoff: &mut Backoff,
    ) -> Result<(Reply, u32), ClientError> {
        let mut retries = 0u32;
        loop {
            let reply = self.query_deadline(nodes, deadline_ms)?;
            match &reply {
                Reply::Error {
                    code: ErrorCode::Backpressure | ErrorCode::Overloaded,
                    retry_after_ms,
                    ..
                } if retries + 1 < max_attempts.max(1) => {
                    let delay = backoff.next_delay_hinted(*retry_after_ms);
                    retries += 1;
                    std::thread::sleep(delay);
                }
                _ => {
                    backoff.reset();
                    return Ok((reply, retries));
                }
            }
        }
    }

    /// Admin: ask the server to hot-swap in the bundle currently on disk.
    /// `Ok(Reply::Reloaded { generation })` on success; a typed error
    /// (e.g. `Internal` with the loader's reason) when the bundle was
    /// rejected and the previous engine kept.
    pub fn reload(&mut self) -> Result<Reply, ClientError> {
        let req = Request::Reload {
            nonce: self.fresh_nonce(),
        };
        match self.roundtrip(&req)? {
            Response::Reloaded { generation, .. } => Ok(Reply::Reloaded { generation }),
            Response::Error {
                code,
                retry_after_ms,
                msg,
                ..
            } => Ok(Reply::Error {
                code,
                retry_after_ms,
                msg,
            }),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let req = Request::Ping {
            nonce: self.fresh_nonce(),
        };
        match self.roundtrip(&req)? {
            Response::Pong { .. } => Ok(()),
            _ => Err(ClientError::UnexpectedReply),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_hint_respecting() {
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(seed, Duration::from_millis(1), Duration::from_millis(50));
            (0..8).map(|_| b.next_delay()).collect()
        };
        assert_eq!(schedule(7), schedule(7), "same seed, same schedule");
        assert_ne!(schedule(7), schedule(8), "different seed, different jitter");
        let s = schedule(7);
        for (i, d) in s.iter().enumerate() {
            assert!(*d <= Duration::from_millis(50), "delay {i} over cap: {d:?}");
            assert!(*d >= Duration::from_micros(500), "delay {i} under base/2");
        }
        // Later delays trend up until the cap pins them.
        assert!(s[5] > s[0]);

        let mut b = Backoff::new(1, Duration::from_millis(1), Duration::from_millis(50));
        assert!(
            b.next_delay_hinted(20) >= Duration::from_millis(20),
            "hint is a floor"
        );
        let mut b = Backoff::new(1, Duration::from_millis(1), Duration::from_millis(50));
        assert!(
            b.next_delay_hinted(10_000) <= Duration::from_millis(50),
            "hint is still capped"
        );
    }

    #[test]
    fn backoff_reset_restarts_the_schedule() {
        let mut b = Backoff::new(3, Duration::from_millis(1), Duration::from_secs(1));
        for _ in 0..6 {
            b.next_delay();
        }
        assert_eq!(b.attempts(), 6);
        let late = b.next_delay();
        b.reset();
        assert_eq!(b.attempts(), 0);
        let early = b.next_delay();
        assert!(early < late, "reset must shrink the window");
    }
}
