//! A blocking client for the serve protocol: one connection, one
//! outstanding request at a time, nonce-checked replies.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use sgnn_dense::DMat;

use crate::wire::{
    self, decode_response, encode_request, ErrorCode, FrameIo, Request, Response, WireError,
    MAX_BODY,
};

/// Why a client call failed (transport or protocol — a typed *error reply*
/// from the server is not a `ClientError`, it's [`Reply::Error`]).
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    Wire(WireError),
    /// The reply's echoed nonce does not match the request — a cross-wired
    /// response, which the e2e suite treats as fatal.
    NonceMismatch {
        sent: u64,
        got: u64,
    },
    /// Server closed the connection without replying.
    Closed,
    /// Got a Pong where logits were expected (or vice versa).
    UnexpectedReply,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O: {e}"),
            ClientError::Wire(e) => write!(f, "client decode: {e}"),
            ClientError::NonceMismatch { sent, got } => {
                write!(f, "nonce mismatch: sent {sent}, got {got}")
            }
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::UnexpectedReply => write!(f, "unexpected reply kind"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A query's outcome: logits, or one of the server's typed errors.
#[derive(Debug, PartialEq)]
pub enum Reply {
    /// Row-major logits, one row per requested node, in request order.
    Logits(DMat),
    Error {
        code: ErrorCode,
        msg: String,
    },
}

pub struct Client {
    stream: TcpStream,
    next_nonce: u64,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            next_nonce: 1,
        })
    }

    /// Like [`connect`](Self::connect), but gives up after `timeout`.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            next_nonce: 1,
        })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        let sent = req.nonce();
        wire::write_frame(&mut self.stream, &encode_request(req))?;
        let body = match wire::read_frame(&mut self.stream, MAX_BODY) {
            Ok(Some(body)) => body,
            Ok(None) => return Err(ClientError::Closed),
            Err(FrameIo::Io(e)) => return Err(ClientError::Io(e)),
            Err(FrameIo::TooLarge(_)) => {
                return Err(ClientError::Wire(WireError::Malformed(
                    "oversized reply".into(),
                )))
            }
        };
        let resp = decode_response(&body).map_err(ClientError::Wire)?;
        // `BadFrame` replies carry nonce 0 (the server could not trust the
        // frame enough to echo anything); everything else must echo ours.
        let got = resp.nonce();
        let is_badframe = matches!(
            resp,
            Response::Error {
                code: ErrorCode::BadFrame,
                ..
            }
        );
        if got != sent && !is_badframe {
            return Err(ClientError::NonceMismatch { sent, got });
        }
        Ok(resp)
    }

    fn fresh_nonce(&mut self) -> u64 {
        let n = self.next_nonce;
        self.next_nonce += 1;
        n
    }

    /// Queries logits for `nodes` with no deadline.
    pub fn query(&mut self, nodes: &[u32]) -> Result<Reply, ClientError> {
        self.query_deadline(nodes, 0)
    }

    /// Queries logits for `nodes`; `deadline_ms > 0` asks the server to
    /// reply `Timeout` instead of serving a stale answer.
    pub fn query_deadline(
        &mut self,
        nodes: &[u32],
        deadline_ms: u32,
    ) -> Result<Reply, ClientError> {
        let req = Request::Query {
            nonce: self.fresh_nonce(),
            deadline_ms,
            nodes: nodes.to_vec(),
        };
        match self.roundtrip(&req)? {
            Response::Logits {
                rows, cols, data, ..
            } => {
                if data.len() != rows as usize * cols as usize {
                    return Err(ClientError::Wire(WireError::Malformed(
                        "logit shape/data mismatch".into(),
                    )));
                }
                Ok(Reply::Logits(DMat::from_vec(
                    rows as usize,
                    cols as usize,
                    data,
                )))
            }
            Response::Error { code, msg, .. } => Ok(Reply::Error { code, msg }),
            Response::Pong { .. } => Err(ClientError::UnexpectedReply),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let req = Request::Ping {
            nonce: self.fresh_nonce(),
        };
        match self.roundtrip(&req)? {
            Response::Pong { .. } => Ok(()),
            _ => Err(ClientError::UnexpectedReply),
        }
    }
}
