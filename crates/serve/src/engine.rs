//! The serving engine: a trained decoupled model rebuilt from its
//! `SGNNCKPT` snapshot, bound to the `SGNNTERM` propagated terms.
//!
//! A query is the mini-batch forward pass with training stripped out:
//! gather the requested rows from every term matrix, recombine them with
//! the learned `θ`/`γ`, and apply `φ1` on an eval-mode tape (dropout off).
//! Per-row logits are independent of batch composition — the dense kernels
//! accumulate each output row in a fixed k-order regardless of how many
//! other rows share the GEMM, and the SIMD backend is byte-identical to
//! scalar for GEMM — which is what makes response caching and request
//! coalescing *bit-transparent*: a cached or coalesced reply is the same
//! bytes a dedicated single-node run would produce.

use sgnn_autograd::{ParamStore, Tape};
use sgnn_core::make_filter;
use sgnn_dense::{rng as drng, DMat};
use sgnn_models::decoupled::{DecoupledConfig, DecoupledModel};
use sgnn_obs as obs;
use sgnn_train::checkpoint::{CkptError, Snapshot};

use crate::artifact::{ServeMeta, TermsArtifact, TermsError};

/// Why an engine could not be assembled (or a bundle not loaded).
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The model checkpoint was rejected by the `SGNNCKPT` codec.
    Ckpt(CkptError),
    /// The terms artifact was rejected by the `SGNNTERM` codec.
    Terms(TermsError),
    /// Checkpoint and terms artifact come from different runs
    /// (seed/config-tag mismatch).
    Pairing(String),
    /// The artifact names a filter this build does not register.
    UnknownFilter(String),
    /// Artifact contents do not fit together (shape/name mismatches).
    Incompatible(String),
    /// Filesystem failure outside the codecs.
    Io(String),
    /// Training failed while building a bundle (see
    /// [`crate::bundle::train_and_export`]).
    Train(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Ckpt(e) => write!(f, "model checkpoint: {e}"),
            ServeError::Terms(e) => write!(f, "terms artifact: {e}"),
            ServeError::Pairing(why) => write!(f, "artifact pairing: {why}"),
            ServeError::UnknownFilter(name) => write!(f, "unknown filter {name}"),
            ServeError::Incompatible(why) => write!(f, "incompatible artifacts: {why}"),
            ServeError::Io(why) => write!(f, "I/O error: {why}"),
            ServeError::Train(why) => write!(f, "training failed: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CkptError> for ServeError {
    fn from(e: CkptError) -> Self {
        ServeError::Ckpt(e)
    }
}

impl From<TermsError> for ServeError {
    fn from(e: TermsError) -> Self {
        ServeError::Terms(e)
    }
}

/// A ready-to-serve model: parameters, terms, and reusable gather scratch.
///
/// `logits` takes `&mut self` only for the scratch buffers — the model and
/// terms are never mutated after construction.
pub struct ServeEngine {
    meta: ServeMeta,
    model: DecoupledModel,
    store: ParamStore,
    terms: Vec<Vec<DMat>>,
    scratch: Vec<Vec<DMat>>,
}

impl ServeEngine {
    /// Binds a decoded snapshot to a decoded terms artifact, verifying the
    /// pairing (same training run) and every shape before serving anything.
    pub fn new(snapshot: Snapshot, artifact: TermsArtifact) -> Result<Self, ServeError> {
        let TermsArtifact { meta, terms } = artifact;
        if snapshot.seed != meta.seed || snapshot.config_tag != meta.config_tag {
            return Err(ServeError::Pairing(format!(
                "checkpoint run (seed {}, tag {:#x}) != terms run (seed {}, tag {:#x})",
                snapshot.seed, snapshot.config_tag, meta.seed, meta.config_tag
            )));
        }
        if meta.nodes == 0 || meta.num_classes == 0 || meta.in_dim == 0 {
            return Err(ServeError::Incompatible(format!(
                "degenerate dimensions: {} nodes, {} classes, {} features",
                meta.nodes, meta.num_classes, meta.in_dim
            )));
        }
        let filter = make_filter(&meta.filter, meta.hops)
            .ok_or_else(|| ServeError::UnknownFilter(meta.filter.clone()))?;
        // Rebuild the exact parameter layout the training run created: same
        // seed, same config, same construction order — then overwrite the
        // initial values with the trained ones from the snapshot.
        let mut store = ParamStore::new();
        let mut rng = drng::seeded(meta.seed);
        let model = DecoupledModel::new(
            filter,
            meta.in_dim,
            meta.num_classes,
            DecoupledConfig {
                hidden: meta.hidden,
                phi0_layers: 0,
                phi1_layers: 2,
                dropout: meta.dropout,
            },
            &mut store,
            &mut rng,
        );
        store
            .load_values(&snapshot.params)
            .map_err(ServeError::Incompatible)?;
        let channels = model.filter.spec().channels.len();
        if terms.len() != channels {
            return Err(ServeError::Incompatible(format!(
                "terms have {} channels, filter {} expects {}",
                terms.len(),
                meta.filter,
                channels
            )));
        }
        for (c, channel) in terms.iter().enumerate() {
            if channel.is_empty() {
                return Err(ServeError::Incompatible(format!(
                    "channel {c} has no terms"
                )));
            }
            for (k, t) in channel.iter().enumerate() {
                if t.shape() != (meta.nodes, meta.in_dim) {
                    return Err(ServeError::Incompatible(format!(
                        "term [{c}][{k}] is {:?}, expected ({}, {})",
                        t.shape(),
                        meta.nodes,
                        meta.in_dim
                    )));
                }
            }
        }
        Ok(Self {
            meta,
            model,
            store,
            terms,
            scratch: Vec::new(),
        })
    }

    pub fn meta(&self) -> &ServeMeta {
        &self.meta
    }

    /// Number of servable nodes (valid query ids are `0..nodes`).
    pub fn nodes(&self) -> usize {
        self.meta.nodes
    }

    /// Output classes per node (columns of every logits reply).
    pub fn classes(&self) -> usize {
        self.meta.num_classes
    }

    /// Serving self-test: run one real forward pass (node 0) and verify
    /// the output shape and that every logit is finite. The hot-reload
    /// path calls this on a freshly loaded engine *before* swapping it in,
    /// so a bundle that decodes cleanly but computes garbage (or panics in
    /// the transform) is rolled back instead of served. The pass also
    /// warms the tape/scratch allocations, so the first post-swap query
    /// pays no cold-start.
    pub fn self_test(&mut self) -> Result<(), ServeError> {
        let out = self.logits(&[0]);
        if out.shape() != (1, self.meta.num_classes) {
            return Err(ServeError::Incompatible(format!(
                "self-test produced {:?}, expected (1, {})",
                out.shape(),
                self.meta.num_classes
            )));
        }
        if let Some(v) = out.row(0).iter().find(|v| !v.is_finite()) {
            return Err(ServeError::Incompatible(format!(
                "self-test produced non-finite logit {v}"
            )));
        }
        Ok(())
    }

    /// Computes logits for the given node ids (one output row per id, in
    /// order; ids may repeat). Bit-identical for a given id regardless of
    /// what else is in the batch.
    ///
    /// # Panics
    /// Panics if any id is `>= self.nodes()` — callers validate ids at the
    /// protocol boundary.
    pub fn logits(&mut self, ids: &[u32]) -> DMat {
        let _sp = obs::span!("serve.transform", rows = ids.len());
        if self.scratch.first().and_then(|c| c.first()).map(DMat::rows) != Some(ids.len()) {
            self.scratch = self
                .terms
                .iter()
                .map(|ch| {
                    ch.iter()
                        .map(|t| DMat::zeros(ids.len(), t.cols()))
                        .collect()
                })
                .collect();
        }
        for (channel, out_channel) in self.terms.iter().zip(self.scratch.iter_mut()) {
            for (t, out) in channel.iter().zip(out_channel.iter_mut()) {
                t.gather_rows_into(ids, out);
            }
        }
        let mut tape = Tape::new(false, 0);
        let out = self.model.forward_mb(&mut tape, &self.scratch, &self.store);
        tape.value(out).clone()
    }
}
