//! A small LRU cache for hot-node logits.
//!
//! Recency is tracked with lazy invalidation: every touch pushes a fresh
//! `(tick, key)` pair onto a queue, and eviction pops pairs until it finds
//! one whose tick still matches the live entry — amortized O(1) per
//! operation with no linked-list juggling. Values are `Arc<[f32]>` so a
//! cached logit row is shared, never copied, into response assembly.
//!
//! Every entry belongs to a **bundle generation**: a hot reload calls
//! [`LruCache::invalidate`] with the new generation tag, which drops every
//! row cached under the old bundle in one sweep. Serving a pre-reload
//! logit row after the model weights changed would be silent staleness —
//! the generation tag makes it structurally impossible.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

pub struct LruCache {
    cap: usize,
    tick: u64,
    /// Bundle generation the current contents were computed under.
    generation: u64,
    map: HashMap<u32, (u64, Arc<[f32]>)>,
    queue: VecDeque<(u64, u32)>,
}

impl LruCache {
    /// `cap == 0` disables caching entirely (every lookup misses).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            tick: 0,
            generation: 0,
            map: HashMap::new(),
            queue: VecDeque::new(),
        }
    }

    /// Generation tag of the bundle the cached rows were computed under.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Drops every cached row and re-tags the cache with the new bundle
    /// generation. Returns the number of rows invalidated. A no-op (0)
    /// when the generation is unchanged — reloading the same generation
    /// twice must not flush a warm cache.
    pub fn invalidate(&mut self, generation: u64) -> usize {
        if generation == self.generation {
            return 0;
        }
        assert!(
            generation > self.generation,
            "bundle generation must be monotonic: {} -> {generation}",
            self.generation
        );
        self.generation = generation;
        let dropped = self.map.len();
        self.map.clear();
        self.queue.clear();
        dropped
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a node's logits, refreshing its recency on hit.
    pub fn get(&mut self, key: u32) -> Option<Arc<[f32]>> {
        self.tick += 1;
        let tick = self.tick;
        let (stamp, val) = self.map.get_mut(&key)?;
        *stamp = tick;
        let val = Arc::clone(val);
        self.queue.push_back((tick, key));
        Some(val)
    }

    /// Inserts (or refreshes) a node's logits, evicting the least recently
    /// used entries past capacity.
    pub fn put(&mut self, key: u32, val: Arc<[f32]>) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        self.map.insert(key, (self.tick, val));
        self.queue.push_back((self.tick, key));
        while self.map.len() > self.cap {
            let Some((tick, key)) = self.queue.pop_front() else {
                break;
            };
            // Stale queue pairs (the entry was touched again later) are
            // skipped; only a pair matching the live stamp evicts.
            if self.map.get(&key).is_some_and(|(t, _)| *t == tick) {
                self.map.remove(&key);
            }
        }
        // The queue grows one pair per touch; compact when it gets far
        // ahead of the live set so it cannot grow without bound.
        if self.queue.len() > 8 * self.cap.max(16) {
            self.queue
                .retain(|(t, k)| self.map.get(k).is_some_and(|(live, _)| live == t));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f32) -> Arc<[f32]> {
        Arc::from(vec![v].into_boxed_slice())
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put(1, row(1.0));
        c.put(2, row(2.0));
        assert!(c.get(1).is_some()); // 2 is now the LRU entry
        c.put(3, row(3.0));
        assert!(c.get(2).is_none(), "LRU entry must be evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut c = LruCache::new(0);
        c.put(1, row(1.0));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_drops_everything_and_retags() {
        let mut c = LruCache::new(4);
        c.put(1, row(1.0));
        c.put(2, row(2.0));
        assert_eq!(c.generation(), 0);
        assert_eq!(c.invalidate(1), 2);
        assert_eq!(c.generation(), 1);
        assert!(c.is_empty());
        assert!(c.get(1).is_none() && c.get(2).is_none());
        // Same-generation invalidation is a no-op, not a flush.
        c.put(3, row(3.0));
        assert_eq!(c.invalidate(1), 0);
        assert!(c.get(3).is_some());
    }

    #[test]
    fn refresh_updates_value_and_queue_stays_bounded() {
        let mut c = LruCache::new(4);
        for i in 0..10_000u32 {
            c.put(i % 4, row(i as f32));
            assert!(c.get(i % 4).is_some());
        }
        assert!(c.len() <= 4);
        assert!(
            c.queue.len() <= 8 * 16 + 2,
            "queue must stay compacted, got {}",
            c.queue.len()
        );
        assert_eq!(c.get(3).unwrap()[0], 9999.0);
    }
}
