//! `SGNNTERM` — the propagated-terms serving artifact.
//!
//! The decoupled scheme's precompute stage materializes `channels × terms`
//! dense matrices (`n × F` each) once; serving only ever gathers rows from
//! them. This module persists that tensor alongside the pairing metadata a
//! server needs to rebuild the exact model it was trained with.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    b"SGNNTERM"            8 bytes
//! version  u32                    4 bytes
//! len      u64 payload bytes      8 bytes
//! crc      u32 CRC32-IEEE of payload
//! payload  ServeMeta + terms
//! ```
//!
//! The payload can be hundreds of MB (`n·K·F` floats), so [`load`] streams:
//! one chunked pass computes the CRC without buffering the payload, a second
//! pass parses directly into the term matrices. Peak transient memory is one
//! 64 KiB chunk, not a payload-sized `Vec` — the portable stand-in for mmap.
//! [`save`] is atomic (`.tmp` + CRC patch + fsync + rename), mirroring the
//! PR-4 checkpoint writer, so a torn write leaves no `terms.bin` behind.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use sgnn_dense::DMat;

pub const MAGIC: [u8; 8] = *b"SGNNTERM";
pub const VERSION: u32 = 1;
pub const HEADER_LEN: usize = 8 + 4 + 8 + 4;

/// Dimension sanity bound: no artifact this workspace produces has a single
/// dimension or collection anywhere near this; a larger value is corruption
/// that slipped past the CRC (i.e. an encoder bug).
const MAX_LEN: u64 = 1 << 33;

/// Streaming chunk size for the CRC pass and bulk float reads.
const CHUNK: usize = 64 * 1024;

/// One incremental step of CRC32-IEEE — the same polynomial as
/// `sgnn_train::checkpoint::crc32` (asserted equivalent in the tests), but
/// resumable so both writer and loader can stream instead of buffering the
/// payload. Pass `0xFFFF_FFFF` initially and XOR the final state with
/// `0xFFFF_FFFF`.
fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &byte in bytes {
        let mut c = (crc ^ byte as u32) & 0xFF;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        crc = (crc >> 8) ^ c;
    }
    crc
}

/// Why a terms artifact was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TermsError {
    /// The file ends before the declared header/payload does.
    Truncated,
    /// The magic bytes are not `SGNNTERM`.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The payload does not match its CRC32.
    CrcMismatch,
    /// The payload passed the CRC but does not parse, or the file has
    /// trailing bytes past the declared payload.
    Malformed(String),
    /// A term matrix contains a non-finite value.
    NonFinite,
    /// Filesystem failure while reading or writing.
    Io(String),
}

impl std::fmt::Display for TermsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TermsError::Truncated => write!(f, "terms artifact truncated"),
            TermsError::BadMagic => write!(f, "not a terms artifact (bad magic)"),
            TermsError::UnsupportedVersion(v) => write!(f, "unsupported terms version {v}"),
            TermsError::CrcMismatch => write!(f, "terms artifact CRC mismatch"),
            TermsError::Malformed(why) => write!(f, "malformed terms artifact: {why}"),
            TermsError::NonFinite => write!(f, "terms artifact contains non-finite values"),
            TermsError::Io(why) => write!(f, "terms artifact I/O error: {why}"),
        }
    }
}

impl std::error::Error for TermsError {}

impl From<std::io::Error> for TermsError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TermsError::Truncated
        } else {
            TermsError::Io(e.to_string())
        }
    }
}

/// Everything a server needs to rebuild the trained model the terms belong
/// to. `seed`/`config_tag` must match the companion `SGNNCKPT` snapshot —
/// the pairing guard against mixing artifacts from different runs.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeMeta {
    /// Registry name of the spectral filter (see `sgnn_core::make_filter`).
    pub filter: String,
    /// Filter order `K` the run was configured with.
    pub hops: usize,
    /// Hidden width of the `φ1` MLP.
    pub hidden: usize,
    /// Dropout rate the parameters were initialized under (eval-mode
    /// serving never applies it, but `DecoupledConfig` is part of the
    /// parameter shapes' provenance).
    pub dropout: f32,
    /// Raw attribute width `F` (term matrices are `nodes × F`).
    pub in_dim: usize,
    /// Output classes of the classification head.
    pub num_classes: usize,
    /// Number of graph nodes (rows of every term matrix).
    pub nodes: usize,
    /// Seed of the training run that produced the terms.
    pub seed: u64,
    /// `TrainConfig::structural_tag("MB")` of the producing run.
    pub config_tag: u64,
}

/// A decoded artifact: metadata plus the `channels × terms` tensor.
#[derive(Debug, PartialEq)]
pub struct TermsArtifact {
    pub meta: ServeMeta,
    pub terms: Vec<Vec<DMat>>,
}

// ---------------------------------------------------------------------------
// Encoding

struct Writer<W: Write> {
    out: W,
    crc: u32,
    written: u64,
}

impl<W: Write> Writer<W> {
    fn new(out: W) -> Self {
        Self {
            out,
            crc: 0xFFFF_FFFF,
            written: 0,
        }
    }

    fn bytes(&mut self, b: &[u8]) -> Result<(), TermsError> {
        // Running CRC over the payload as it streams out, so the header
        // patch at the end never re-reads what was written.
        self.crc = crc32_update(self.crc, b);
        self.written += b.len() as u64;
        self.out.write_all(b)?;
        Ok(())
    }

    fn u64(&mut self, v: u64) -> Result<(), TermsError> {
        self.bytes(&v.to_le_bytes())
    }

    fn f32(&mut self, v: f32) -> Result<(), TermsError> {
        self.bytes(&v.to_bits().to_le_bytes())
    }

    fn str(&mut self, s: &str) -> Result<(), TermsError> {
        self.u64(s.len() as u64)?;
        self.bytes(s.as_bytes())
    }

    fn finish(self) -> (u32, u64) {
        (self.crc ^ 0xFFFF_FFFF, self.written)
    }
}

fn write_payload<W: Write>(
    w: &mut Writer<W>,
    meta: &ServeMeta,
    terms: &[Vec<DMat>],
) -> Result<(), TermsError> {
    w.str(&meta.filter)?;
    w.u64(meta.hops as u64)?;
    w.u64(meta.hidden as u64)?;
    w.f32(meta.dropout)?;
    w.u64(meta.in_dim as u64)?;
    w.u64(meta.num_classes as u64)?;
    w.u64(meta.nodes as u64)?;
    w.u64(meta.seed)?;
    w.u64(meta.config_tag)?;
    w.u64(terms.len() as u64)?;
    for channel in terms {
        w.u64(channel.len() as u64)?;
        for t in channel {
            w.u64(t.rows() as u64)?;
            w.u64(t.cols() as u64)?;
            // Bulk little-endian float dump, chunked to keep the CRC loop in
            // cache-sized pieces.
            let data = t.data();
            let mut buf = Vec::with_capacity(CHUNK);
            for block in data.chunks(CHUNK / 4) {
                buf.clear();
                for &v in block {
                    buf.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                w.bytes(&buf)?;
            }
        }
    }
    Ok(())
}

/// Atomically writes `meta` + `terms` to `path`: payload streams to
/// `path.tmp` behind a placeholder header, the header is patched with the
/// final length and CRC, the file is fsynced, then renamed over `path`.
pub fn save(path: &Path, meta: &ServeMeta, terms: &[Vec<DMat>]) -> Result<(), TermsError> {
    let tmp = path.with_extension("tmp");
    {
        let file = File::create(&tmp)?;
        let mut out = BufWriter::new(file);
        out.write_all(&MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&0u64.to_le_bytes())?; // length, patched below
        out.write_all(&0u32.to_le_bytes())?; // crc, patched below
        let mut w = Writer::new(&mut out);
        write_payload(&mut w, meta, terms)?;
        let (crc, len) = w.finish();
        out.flush()?;
        let mut file = out
            .into_inner()
            .map_err(|e| TermsError::Io(e.to_string()))?;
        file.seek(SeekFrom::Start(12))?;
        file.write_all(&len.to_le_bytes())?;
        file.write_all(&crc.to_le_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Decoding

struct Reader<R: Read> {
    inner: R,
    /// Payload bytes not yet consumed; any read past this is `Truncated`
    /// (the declared length is authoritative — the CRC already passed).
    remaining: u64,
}

impl<R: Read> Reader<R> {
    fn take(&mut self, buf: &mut [u8]) -> Result<(), TermsError> {
        if (buf.len() as u64) > self.remaining {
            return Err(TermsError::Truncated);
        }
        self.inner.read_exact(buf)?;
        self.remaining -= buf.len() as u64;
        Ok(())
    }

    fn u32(&mut self) -> Result<u32, TermsError> {
        let mut b = [0u8; 4];
        self.take(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, TermsError> {
        let mut b = [0u8; 8];
        self.take(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// A `u64` length/dimension with the [`MAX_LEN`] sanity bound.
    fn len(&mut self, what: &str) -> Result<usize, TermsError> {
        let v = self.u64()?;
        if v > MAX_LEN {
            return Err(TermsError::Malformed(format!("{what} {v} out of range")));
        }
        Ok(v as usize)
    }

    fn f32(&mut self) -> Result<f32, TermsError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn str(&mut self, what: &str) -> Result<String, TermsError> {
        let n = self.len(what)?;
        if n > 4096 {
            return Err(TermsError::Malformed(format!("{what} length {n}")));
        }
        let mut b = vec![0u8; n];
        self.take(&mut b)?;
        String::from_utf8(b).map_err(|_| TermsError::Malformed(format!("{what} not UTF-8")))
    }
}

fn read_header<R: Read>(r: &mut R) -> Result<(u64, u32), TermsError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(TermsError::BadMagic);
    }
    let mut b4 = [0u8; 4];
    r.read_exact(&mut b4)?;
    let version = u32::from_le_bytes(b4);
    if version != VERSION {
        return Err(TermsError::UnsupportedVersion(version));
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let len = u64::from_le_bytes(b8);
    if len > MAX_LEN {
        return Err(TermsError::Malformed(format!("payload length {len}")));
    }
    r.read_exact(&mut b4)?;
    Ok((len, u32::from_le_bytes(b4)))
}

/// Streamed load: pass 1 CRCs the payload in 64 KiB chunks, pass 2 parses
/// it straight into the term matrices. The file must contain exactly
/// `HEADER_LEN + len` bytes — trailing garbage is rejected.
pub fn load(path: &Path) -> Result<TermsArtifact, TermsError> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut reader = BufReader::with_capacity(CHUNK, file);
    let (len, want_crc) = read_header(&mut reader)?;
    if file_len < HEADER_LEN as u64 + len {
        return Err(TermsError::Truncated);
    }
    if file_len > HEADER_LEN as u64 + len {
        return Err(TermsError::Malformed(format!(
            "{} trailing bytes past declared payload",
            file_len - HEADER_LEN as u64 - len
        )));
    }

    // Pass 1: streaming CRC, constant memory.
    let mut crc = 0xFFFF_FFFFu32;
    {
        let mut left = len;
        let mut chunk = [0u8; CHUNK];
        while left > 0 {
            let take = (left as usize).min(CHUNK);
            reader.read_exact(&mut chunk[..take])?;
            crc = crc32_update(crc, &chunk[..take]);
            left -= take as u64;
        }
    }
    if crc ^ 0xFFFF_FFFF != want_crc {
        return Err(TermsError::CrcMismatch);
    }

    // Pass 2: rewind past the header and parse.
    let mut file = reader.into_inner();
    file.seek(SeekFrom::Start(HEADER_LEN as u64))?;
    let mut r = Reader {
        inner: BufReader::with_capacity(CHUNK, file),
        remaining: len,
    };

    let meta = ServeMeta {
        filter: r.str("filter name")?,
        hops: r.len("hops")?,
        hidden: r.len("hidden")?,
        dropout: r.f32()?,
        in_dim: r.len("in_dim")?,
        num_classes: r.len("num_classes")?,
        nodes: r.len("nodes")?,
        seed: r.u64()?,
        config_tag: r.u64()?,
    };
    let channels = r.len("channel count")?;
    if channels > 4096 {
        return Err(TermsError::Malformed(format!("{channels} channels")));
    }
    let mut terms = Vec::with_capacity(channels);
    for _ in 0..channels {
        let nterms = r.len("term count")?;
        if nterms > 65_536 {
            return Err(TermsError::Malformed(format!("{nterms} terms")));
        }
        let mut channel = Vec::with_capacity(nterms);
        for _ in 0..nterms {
            let rows = r.len("term rows")?;
            let cols = r.len("term cols")?;
            let total = rows
                .checked_mul(cols)
                .filter(|&t| (t as u64) * 4 <= MAX_LEN)
                .ok_or_else(|| TermsError::Malformed(format!("term shape {rows}x{cols}")))?;
            let mut data = Vec::with_capacity(total);
            let mut byte_buf = [0u8; CHUNK];
            let mut left = total * 4;
            while left > 0 {
                let take = left.min(CHUNK);
                r.take(&mut byte_buf[..take])?;
                for quad in byte_buf[..take].chunks_exact(4) {
                    let v =
                        f32::from_bits(u32::from_le_bytes([quad[0], quad[1], quad[2], quad[3]]));
                    if !v.is_finite() {
                        return Err(TermsError::NonFinite);
                    }
                    data.push(v);
                }
                left -= take;
            }
            channel.push(DMat::from_vec(rows, cols, data));
        }
        terms.push(channel);
    }
    if r.remaining != 0 {
        return Err(TermsError::Malformed(format!(
            "{} unparsed payload bytes",
            r.remaining
        )));
    }
    Ok(TermsArtifact { meta, terms })
}

/// In-memory encode (payload + header), for the proptest suite; [`save`]
/// streams the same bytes to disk.
pub fn encode(meta: &ServeMeta, terms: &[Vec<DMat>]) -> Vec<u8> {
    let mut payload = Vec::new();
    let mut w = Writer::new(&mut payload);
    write_payload(&mut w, meta, terms).expect("Vec write cannot fail");
    let (crc, len) = w.finish();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (ServeMeta, Vec<Vec<DMat>>) {
        let meta = ServeMeta {
            filter: "Monomial".into(),
            hops: 3,
            hidden: 16,
            dropout: 0.5,
            in_dim: 4,
            num_classes: 3,
            nodes: 5,
            seed: 42,
            config_tag: 0xDEAD_BEEF,
        };
        let t = |r: usize, c: usize, s: f32| {
            DMat::from_vec(r, c, (0..r * c).map(|i| i as f32 * s).collect())
        };
        (
            meta,
            vec![vec![t(5, 4, 0.5), t(5, 4, -1.25)], vec![t(5, 4, 2.0)]],
        )
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("sgnn-term-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("terms.bin");
        let (meta, terms) = sample();
        save(&path, &meta, &terms).unwrap();
        let got = load(&path).unwrap();
        assert_eq!(got.meta, meta);
        assert_eq!(got.terms, terms);
        // save is atomic: no .tmp left behind.
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn encode_matches_save() {
        let dir = std::env::temp_dir().join(format!("sgnn-term-enc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("terms.bin");
        let (meta, terms) = sample();
        save(&path, &meta, &terms).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), encode(&meta, &terms));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_bad_magic_version_and_nan() {
        let dir = std::env::temp_dir().join(format!("sgnn-term-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("terms.bin");
        let (meta, mut terms) = sample();

        let mut bytes = encode(&meta, &terms);
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(load(&path).unwrap_err(), TermsError::BadMagic);

        let mut bytes = encode(&meta, &terms);
        bytes[8] = 99;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(load(&path).unwrap_err(), TermsError::UnsupportedVersion(99));

        terms[0][0].data_mut()[3] = f32::NAN;
        std::fs::write(&path, encode(&meta, &terms)).unwrap();
        assert_eq!(load(&path).unwrap_err(), TermsError::NonFinite);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_matches_checkpoint_codec() {
        // The streamed CRC must be the exact function the PR-4 checkpoint
        // codec uses, so both artifact families share one integrity story.
        for data in [&b""[..], b"a", b"spectral", &[0xFFu8; 300][..]] {
            assert_eq!(
                crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF,
                sgnn_train::checkpoint::crc32(data)
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let dir = std::env::temp_dir().join(format!("sgnn-term-trail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("terms.bin");
        let (meta, terms) = sample();
        let mut bytes = encode(&meta, &terms);
        bytes.push(0);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path).unwrap_err(), TermsError::Malformed(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
