//! `sgnn-serve` — online node-classification over precomputed propagation.
//!
//! The decoupled mini-batch scheme (Figure 1(b) of the paper) precomputes
//! every propagated term once, on CPU, before training touches a batch.
//! That tensor is a *serving index in disguise*: answering "what class is
//! node v?" needs only a row gather and the small dense transform, never
//! the graph. This crate turns that observation into a service:
//!
//! * [`artifact`] — the `SGNNTERM` codec: versioned, CRC-checked,
//!   streamed persistence for the propagated terms.
//! * [`bundle`] — pairing the terms with their `SGNNCKPT` model snapshot
//!   (PR 4's codec, reused byte-for-byte) and rebuilding a model from the
//!   pair; [`bundle::offline_logits`] is the bit-identity reference.
//! * [`engine`] — the query-time forward pass with reusable gather
//!   scratch; per-row results are independent of batch composition, which
//!   is what licenses caching and coalescing.
//! * [`wire`] — the length-prefixed, CRC-trailed binary protocol.
//! * [`server`] — accept loop, bounded batching queue with linger-based
//!   coalescing, LRU logit cache, and the typed degradation ladder
//!   (backpressure / timeout / bad-frame replies — never a crash), plus
//!   the self-healing machinery: batcher watchdog, hot bundle reload,
//!   idle-connection reaper.
//! * [`admission`] — deadline-aware load shedding at enqueue and the
//!   adaptive batch-size policy.
//! * [`conn`] — per-connection state: shared write half, in-flight cap,
//!   exactly-once reply tickets, idle tracking.
//! * [`client`] / [`loadgen`] — a blocking client with seeded-jitter
//!   retry/backoff and the multi-client load generator behind
//!   `BENCH_serve.json`.
//! * [`faults`] — `slow`/`fail`/`panic` batch faults plus socket-layer
//!   network chaos (`stall`/`disconnect`/`torn-write`/`corrupt-frame`),
//!   the serving counterpart of `sgnn_bench::faults`.

pub mod admission;
pub mod artifact;
pub mod bundle;
pub mod client;
pub mod conn;
pub mod engine;
pub mod faults;
pub mod loadgen;
pub mod lru;
pub mod server;
pub mod wire;

pub use admission::Admission;
pub use artifact::{ServeMeta, TermsArtifact, TermsError};
pub use bundle::{export, load_engine, offline_logits, train_and_export};
pub use client::{Backoff, Client, ClientError, Reply};
pub use engine::{ServeEngine, ServeError};
pub use loadgen::{LoadConfig, LoadReport};
pub use server::{serve, ServeConfig, ServerHandle};
pub use wire::{ErrorCode, Request, Response, WireError};
