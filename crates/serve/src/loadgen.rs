//! A multi-client load generator: N threads of closed-loop queries against
//! one server, exact latency percentiles from the pooled samples.
//!
//! Used by the `serve` bench (`BENCH_serve.json` at 1/4/16/64 clients), the
//! `experiments serve-load` subcommand, and the CI smoke/chaos steps.
//!
//! Robust by construction (ISSUE 9): clients connect with bounded jittered
//! retry, reconnect after a transport failure (a chaos `disconnect` or
//! `torn-write` must not end the run), retry `Backpressure`/`Overloaded`
//! replies with the server's `retry_after_ms` hint as the backoff floor,
//! and report a per-code error breakdown (`shed`/`timeouts`/
//! `backpressure`) plus retry/reconnect counts — the observability the
//! 16→64-client regression in `BENCH_serve.json` was missing.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use crate::client::{Backoff, Client, Reply};
use crate::wire::ErrorCode;

#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent closed-loop clients (one connection each).
    pub clients: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Nodes per query (drawn uniformly from `0..node_range`).
    pub nodes_per_query: usize,
    /// Exclusive upper bound on generated node ids.
    pub node_range: u32,
    /// Per-request deadline forwarded to the server; 0 = none.
    pub deadline_ms: u32,
    /// Base seed; client `i` streams from `seed + i`.
    pub seed: u64,
    /// Per-query attempts on retryable errors (`Backpressure`/
    /// `Overloaded`); 1 = no retries.
    pub max_attempts: u32,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            duration: Duration::from_secs(2),
            nodes_per_query: 1,
            node_range: 1,
            deadline_ms: 0,
            seed: 1,
            max_attempts: 3,
        }
    }
}

/// Aggregated outcome of one load run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    pub clients: usize,
    /// Successful logit replies.
    pub ok: u64,
    /// Queries whose final outcome was an error (typed reply after
    /// retries were exhausted, or a transport failure).
    pub errors: u64,
    /// Typed replies by code, counting every occurrence (including ones
    /// that were then retried): admission/overload sheds, …
    pub shed: u64,
    /// …deadline expiries, …
    pub timeouts: u64,
    /// …and queue-full rejections.
    pub backpressure: u64,
    /// Retry attempts taken after retryable errors.
    pub retries: u64,
    /// Reconnects after a transport failure mid-run.
    pub reconnects: u64,
    pub elapsed_s: f64,
    /// Successful replies per second.
    pub qps: f64,
    /// Exact percentiles over successful-request latencies, microseconds.
    pub p50_us: f64,
    pub p99_us: f64,
    /// **Time-to-outcome** percentiles, microseconds: turnaround over
    /// *every* typed reply, successes and errors alike. Under overload
    /// these are the metrics shedding improves — a shed client learns its
    /// fate in microseconds at the reader, while an admitted-then-expired
    /// request discovers it only at dequeue, a full queue-drain later.
    pub p50_reply_us: f64,
    pub p99_reply_us: f64,
}

/// Per-worker tallies pooled into the [`LoadReport`].
#[derive(Default)]
struct WorkerStats {
    lat_ns: Vec<u64>,
    /// Turnaround of *every* typed reply (successes and errors alike) —
    /// the time until the client knew the outcome.
    reply_ns: Vec<u64>,
    ok: u64,
    errors: u64,
    shed: u64,
    timeouts: u64,
    backpressure: u64,
    retries: u64,
    reconnects: u64,
    /// Set when the worker could not (re)connect at all.
    poisoned: bool,
}

/// Deterministic per-thread id stream (splitmix-style LCG) — no shared RNG,
/// no rand dependency in the hot loop.
struct IdStream {
    state: u64,
    range: u32,
}

impl IdStream {
    fn next(&mut self) -> u32 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.state >> 33) % self.range.max(1) as u64) as u32
    }
}

/// How many times a worker will try to (re)establish its connection.
const CONNECT_ATTEMPTS: u32 = 8;

fn worker(addr: SocketAddr, cfg: &LoadConfig, index: usize, stop_at: Instant) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut backoff = Backoff::for_seed(cfg.seed.wrapping_add(index as u64).wrapping_add(0xB0FF));
    let Ok(mut client) = Client::connect_retry(addr, CONNECT_ATTEMPTS, &mut backoff) else {
        stats.poisoned = true;
        return stats;
    };
    let mut ids = IdStream {
        state: cfg
            .seed
            .wrapping_add(index as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
        range: cfg.node_range,
    };
    let mut nodes = vec![0u32; cfg.nodes_per_query];
    while Instant::now() < stop_at {
        for slot in nodes.iter_mut() {
            *slot = ids.next();
        }
        // Per-query retry loop so every typed reply — including retried
        // ones — lands in the breakdown. Latency is clocked per *attempt*
        // (backoff sleeps excluded): the percentiles measure the tail the
        // server produces, not the client's retry policy.
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let t0 = Instant::now();
            match client.query_deadline(&nodes, cfg.deadline_ms) {
                Ok(Reply::Logits(_)) => {
                    stats.ok += 1;
                    let ns = t0.elapsed().as_nanos() as u64;
                    stats.lat_ns.push(ns);
                    stats.reply_ns.push(ns);
                    backoff.reset();
                    break;
                }
                Ok(Reply::Error {
                    code,
                    retry_after_ms,
                    ..
                }) => {
                    stats.reply_ns.push(t0.elapsed().as_nanos() as u64);
                    match code {
                        ErrorCode::Overloaded => stats.shed += 1,
                        ErrorCode::Timeout => stats.timeouts += 1,
                        ErrorCode::Backpressure => stats.backpressure += 1,
                        _ => {}
                    }
                    let retryable = matches!(code, ErrorCode::Backpressure | ErrorCode::Overloaded);
                    if retryable && attempt < cfg.max_attempts.max(1) {
                        stats.retries += 1;
                        std::thread::sleep(backoff.next_delay_hinted(retry_after_ms));
                        continue;
                    }
                    stats.errors += 1;
                    backoff.reset();
                    break;
                }
                Ok(Reply::Reloaded { .. }) => {
                    // A server never answers a query with Reloaded; treat
                    // as a failed query if it somehow happens.
                    stats.errors += 1;
                    break;
                }
                Err(_) => {
                    // Transport gone (chaos disconnect/torn-write, reap,
                    // or a real crash): reconnect and move on to the next
                    // query — the in-flight one is unaccounted, which is
                    // exactly what the server-side conservation law is
                    // for.
                    stats.errors += 1;
                    match Client::connect_retry(addr, CONNECT_ATTEMPTS, &mut backoff) {
                        Ok(c) => {
                            stats.reconnects += 1;
                            client = c;
                            backoff.reset();
                            break;
                        }
                        Err(_) => {
                            stats.poisoned = true;
                            return stats;
                        }
                    }
                }
            }
        }
    }
    stats
}

/// Runs the load and pools every client's samples.
///
/// Closed-loop: each client issues its next query as soon as the previous
/// reply lands, so offered load scales with `clients` and queue pressure —
/// hence coalescing — emerges naturally at higher client counts.
pub fn run(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let stop_at = Instant::now() + cfg.duration;
    let started = Instant::now();
    let mut handles = Vec::with_capacity(cfg.clients);
    for i in 0..cfg.clients {
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || worker(addr, &cfg, i, stop_at)));
    }
    let mut all_lat: Vec<u64> = Vec::new();
    let mut all_reply: Vec<u64> = Vec::new();
    let mut report = LoadReport {
        clients: cfg.clients,
        ..Default::default()
    };
    for h in handles {
        let s = h.join().expect("load client panicked");
        all_lat.extend(s.lat_ns);
        all_reply.extend(s.reply_ns);
        report.ok += s.ok;
        report.shed += s.shed;
        report.timeouts += s.timeouts;
        report.backpressure += s.backpressure;
        report.retries += s.retries;
        report.reconnects += s.reconnects;
        report.errors = if s.poisoned {
            // A client that could never (re)connect poisons the run: the
            // bench treats u64::MAX errors as "do not trust this point".
            u64::MAX
        } else {
            report.errors.saturating_add(s.errors)
        };
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    all_lat.sort_unstable();
    all_reply.sort_unstable();
    let pct_of = |samples: &[u64], q: f64| -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let idx = ((samples.len() as f64 * q) as usize).min(samples.len() - 1);
        samples[idx] as f64 / 1_000.0
    };
    let pct = |q: f64| pct_of(&all_lat, q);
    report.elapsed_s = elapsed_s;
    report.qps = if elapsed_s > 0.0 {
        report.ok as f64 / elapsed_s
    } else {
        0.0
    };
    report.p50_us = pct(0.50);
    report.p99_us = pct(0.99);
    report.p50_reply_us = pct_of(&all_reply, 0.50);
    report.p99_reply_us = pct_of(&all_reply, 0.99);
    report
}
