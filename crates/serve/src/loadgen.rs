//! A multi-client load generator: N threads of closed-loop queries against
//! one server, exact latency percentiles from the pooled samples.
//!
//! Used by the `serve` bench (`BENCH_serve.json` at 1/4/16/64 clients), the
//! `experiments serve-load` subcommand, and the CI smoke step.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use crate::client::{Client, Reply};

#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent closed-loop clients (one connection each).
    pub clients: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Nodes per query (drawn uniformly from `0..node_range`).
    pub nodes_per_query: usize,
    /// Exclusive upper bound on generated node ids.
    pub node_range: u32,
    /// Per-request deadline forwarded to the server; 0 = none.
    pub deadline_ms: u32,
    /// Base seed; client `i` streams from `seed + i`.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            duration: Duration::from_secs(2),
            nodes_per_query: 1,
            node_range: 1,
            deadline_ms: 0,
            seed: 1,
        }
    }
}

/// Aggregated outcome of one load run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    pub clients: usize,
    /// Successful logit replies.
    pub ok: u64,
    /// Typed error replies (backpressure, timeout, ...).
    pub errors: u64,
    pub elapsed_s: f64,
    /// Successful replies per second.
    pub qps: f64,
    /// Exact percentiles over successful-request latencies, microseconds.
    pub p50_us: f64,
    pub p99_us: f64,
}

/// Deterministic per-thread id stream (splitmix-style LCG) — no shared RNG,
/// no rand dependency in the hot loop.
struct IdStream {
    state: u64,
    range: u32,
}

impl IdStream {
    fn next(&mut self) -> u32 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.state >> 33) % self.range.max(1) as u64) as u32
    }
}

/// Runs the load and pools every client's samples.
///
/// Closed-loop: each client issues its next query as soon as the previous
/// reply lands, so offered load scales with `clients` and queue pressure —
/// hence coalescing — emerges naturally at higher client counts.
pub fn run(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let stop_at = Instant::now() + cfg.duration;
    let started = Instant::now();
    let mut handles = Vec::with_capacity(cfg.clients);
    for i in 0..cfg.clients {
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            let mut lat_ns: Vec<u64> = Vec::new();
            let mut ok = 0u64;
            let mut errors = 0u64;
            let Ok(mut client) = Client::connect_timeout(addr, Duration::from_secs(5)) else {
                return (lat_ns, ok, u64::MAX); // connection failure poisons the run
            };
            let mut ids = IdStream {
                state: cfg
                    .seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                range: cfg.node_range,
            };
            let mut nodes = vec![0u32; cfg.nodes_per_query];
            while Instant::now() < stop_at {
                for slot in nodes.iter_mut() {
                    *slot = ids.next();
                }
                let t0 = Instant::now();
                match client.query_deadline(&nodes, cfg.deadline_ms) {
                    Ok(Reply::Logits(_)) => {
                        ok += 1;
                        lat_ns.push(t0.elapsed().as_nanos() as u64);
                    }
                    Ok(Reply::Error { .. }) => errors += 1,
                    Err(_) => {
                        errors += 1;
                        break; // transport gone; this client is done
                    }
                }
            }
            (lat_ns, ok, errors)
        }));
    }
    let mut all_lat: Vec<u64> = Vec::new();
    let mut ok = 0u64;
    let mut errors = 0u64;
    for h in handles {
        let (lat, o, e) = h.join().expect("load client panicked");
        all_lat.extend(lat);
        ok += o;
        errors = errors.saturating_add(e);
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    all_lat.sort_unstable();
    let pct = |q: f64| -> f64 {
        if all_lat.is_empty() {
            return 0.0;
        }
        let idx = ((all_lat.len() as f64 * q) as usize).min(all_lat.len() - 1);
        all_lat[idx] as f64 / 1_000.0
    };
    LoadReport {
        clients: cfg.clients,
        ok,
        errors,
        elapsed_s,
        qps: if elapsed_s > 0.0 {
            ok as f64 / elapsed_s
        } else {
            0.0
        },
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}
