//! Deadline-aware admission control: shed at enqueue, not at dequeue.
//!
//! PR 8's server already *detects* hopeless requests — but only at
//! dequeue, after they sat in the queue displacing requests that could
//! still have met their deadlines. Under overload that is the worst
//! possible policy: every queued-then-expired request wastes queue
//! capacity and batcher wakeups, which is exactly the 16→64-client p99
//! collapse in `BENCH_serve.json`.
//!
//! The admission gate predicts, at enqueue time, whether a request can
//! make its deadline:
//!
//! ```text
//! est_wait = (⌈(queued_rows + request_rows) / batch_rows⌉ + 1) × p90_batch_time
//! admit  ⇔  est_wait ≤ deadline_remaining
//! ```
//!
//! (the `+ 1` is the batch already in flight — dequeued rows are out of
//! `queued_rows` but a new arrival still waits behind them).
//!
//! The wait is estimated in **batches, not rows**: the batcher drains up
//! to `batch_rows` rows per service round, and a service round's cost is
//! dominated by fixed per-batch work (reply fan-out, lock handoff, tape
//! setup) with a comparatively small per-row increment. A naive
//! `queued_rows × per_row_time` model learns its per-row rate from
//! overhead-dominated small batches and then extrapolates linearly —
//! overestimating the drain time of a deep queue by an order of
//! magnitude, shedding traffic a healthy server could serve, and (since
//! shedding keeps queues short and batches small) locking itself into
//! the overestimate.
//!
//! `p90_batch_time` comes from a local log-bucketed histogram of observed
//! whole-batch service times (same bucket scheme as `sgnn_obs::hist`,
//! whose bucketing functions are reused verbatim). The estimator is
//! **always on** — the obs histograms record only while a trace is being
//! collected, and load shedding must not depend on whether anyone is
//! watching. Shed requests get an `Overloaded` reply carrying a
//! `retry_after_ms` hint: the time the *current* queue needs to drain at
//! the p90 rate, so a well-behaved client retries exactly when capacity
//! is likely back.
//!
//! Only deadline-bearing requests are ever shed — a request without a
//! deadline has, by definition, no deadline to miss, and queue-full
//! backpressure already bounds how many can pile up. The estimator also
//! refuses to shed until it has seen [`WARMUP_SAMPLES`] rows, so a cold
//! server never rejects its first wave of traffic on a garbage estimate.
//!
//! The same queue-depth signal drives the **adaptive batch size**
//! ([`Admission::batch_rows`]): when rows are piling up, the batcher is
//! allowed to take bigger batches (amortizing per-batch overhead exactly
//! when amortization matters), falling back to the configured base size
//! the moment the queue drains.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sgnn_obs::hist::{bucket_index, quantile_from_counts, NUM_BUCKETS};

/// Batches the estimator must observe before it is trusted to shed.
pub const WARMUP_SAMPLES: u64 = 32;

/// Recompute the cached p90 every this many recorded batches.
const REFRESH_EVERY: u64 = 16;

/// Adaptive batching may grow the batch to this multiple of the base.
pub const MAX_BATCH_GROWTH: usize = 4;

/// Shared overload-control state: queue depth in rows plus an always-on
/// per-row service-time estimator. One instance per server, shared by
/// every reader thread (admission) and the batcher (measurement).
pub struct Admission {
    /// Rows currently sitting in the batch queue.
    queued_rows: AtomicU64,
    /// Log-bucketed histogram of whole-batch service nanoseconds.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    /// Cached p90 batch-service nanoseconds (refreshed every
    /// [`REFRESH_EVERY`] batches).
    p90_batch_ns: AtomicU64,
}

impl Default for Admission {
    fn default() -> Self {
        Self::new()
    }
}

impl Admission {
    pub fn new() -> Self {
        Self {
            queued_rows: AtomicU64::new(0),
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            p90_batch_ns: AtomicU64::new(0),
        }
    }

    /// Rows currently queued (admitted but not yet dequeued).
    pub fn queued_rows(&self) -> u64 {
        self.queued_rows.load(Ordering::Relaxed)
    }

    /// Batches observed so far (estimator warm-up progress).
    pub fn samples(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Current p90 batch-service-time estimate (0 until first refresh).
    pub fn p90_batch_ns(&self) -> u64 {
        self.p90_batch_ns.load(Ordering::Relaxed)
    }

    /// Called by the reader after a request is accepted into the queue.
    pub fn on_enqueue(&self, rows: usize) {
        self.queued_rows.fetch_add(rows as u64, Ordering::Relaxed);
    }

    /// Called by the batcher for every request it pulls off the queue
    /// (including ones it then expires — they occupied queue space).
    pub fn on_dequeue(&self, rows: usize) {
        // Saturating: a restart-recovered batcher may drain rows whose
        // enqueue increment died with a poisoned predecessor.
        let rows = rows as u64;
        let mut cur = self.queued_rows.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(rows);
            match self.queued_rows.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Records one executed batch: `rows` rows served in `elapsed` of
    /// whole-batch service time (transform, cache fills, reply fan-out).
    pub fn record_batch(&self, rows: usize, elapsed: Duration) {
        if rows == 0 {
            return;
        }
        self.counts[bucket_index(elapsed.as_nanos() as u64)].fetch_add(1, Ordering::Relaxed);
        let total = self.total.fetch_add(1, Ordering::Relaxed) + 1;
        if total.is_multiple_of(REFRESH_EVERY) || total == WARMUP_SAMPLES {
            self.refresh();
        }
    }

    /// Recomputes the cached p90 from the bucket counts.
    fn refresh(&self) {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let p90 = quantile_from_counts(&counts, total, 0.90);
        self.p90_batch_ns.store(p90, Ordering::Relaxed);
    }

    /// Estimated nanoseconds until `extra_rows` more rows would clear the
    /// queue, given the batcher drains up to `batch_rows` rows per round.
    /// The `+ 1` charges for the batch currently in flight: rows the
    /// batcher has already dequeued are invisible to `queued_rows`, but a
    /// newly enqueued request still waits behind them.
    fn est_drain_ns(&self, extra_rows: u64, batch_rows: usize) -> u64 {
        let p90 = self.p90_batch_ns.load(Ordering::Relaxed);
        let rows = self.queued_rows.load(Ordering::Relaxed) + extra_rows;
        let batches = rows.div_ceil(batch_rows.max(1) as u64) + 1;
        batches.saturating_mul(p90)
    }

    /// Admission decision for a deadline-bearing request of `rows` rows
    /// with `remaining` budget left, against a batcher draining up to
    /// `batch_rows` rows per service round. `Ok` admits;
    /// `Err(retry_after_ms)` sheds with a drain-time hint for the
    /// client's backoff.
    ///
    /// Requests without a deadline are always admitted — callers skip
    /// this entirely for them.
    pub fn admit(&self, rows: usize, remaining: Duration, batch_rows: usize) -> Result<(), u32> {
        if self.total.load(Ordering::Relaxed) < WARMUP_SAMPLES
            || self.p90_batch_ns.load(Ordering::Relaxed) == 0
        {
            return Ok(());
        }
        if self.est_drain_ns(rows as u64, batch_rows) <= remaining.as_nanos() as u64 {
            return Ok(());
        }
        // Hint: how long the *current* queue needs to drain. At least
        // 1ms (a zero hint would tell clients to hammer), at most 1s (an
        // estimate that far out is noise, and clients cap anyway).
        let drain_ms = self.est_drain_ns(0, batch_rows) / 1_000_000;
        Err(drain_ms.clamp(1, 1_000) as u32)
    }

    /// Adaptive batch size: the deeper the queue, the bigger the batch,
    /// between `base` and `MAX_BATCH_GROWTH × base`. Amortizes per-batch
    /// overhead (tape setup, scratch checks, reply fan-out) exactly when
    /// the queue says it matters.
    pub fn batch_rows(&self, base: usize) -> usize {
        let base = base.max(1);
        let queued = self.queued_rows.load(Ordering::Relaxed) as usize;
        queued.clamp(base, MAX_BATCH_GROWTH * base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_sheds_before_warmup() {
        let a = Admission::new();
        a.on_enqueue(1_000_000);
        assert_eq!(a.admit(64, Duration::from_nanos(1), 8), Ok(()));
        for _ in 0..WARMUP_SAMPLES - 1 {
            a.record_batch(1, Duration::from_millis(1));
        }
        assert_eq!(a.admit(64, Duration::from_nanos(1), 8), Ok(()));
        a.record_batch(1, Duration::from_millis(1));
        assert!(a.admit(64, Duration::from_nanos(1), 8).is_err());
    }

    #[test]
    fn sheds_only_when_deadline_cannot_be_met() {
        let a = Admission::new();
        // 1ms per batch, warmed up.
        for _ in 0..WARMUP_SAMPLES {
            a.record_batch(8, Duration::from_millis(1));
        }
        let p90 = a.p90_batch_ns();
        assert!((875_000..=1_000_000).contains(&p90), "p90 {p90}");
        a.on_enqueue(100);
        // 100 queued rows + 1 at 8 rows per 1ms batch ≈ 13ms of drain: a
        // 5ms deadline is hopeless, a 200ms one is fine.
        let hint = a.admit(1, Duration::from_millis(5), 8).unwrap_err();
        assert!((1..=1_000).contains(&hint), "hint {hint}ms");
        assert_eq!(a.admit(1, Duration::from_millis(200), 8), Ok(()));
        // A batcher allowed to take everything in one round drains the
        // same queue in ~1 batch, so the same deadline is meetable.
        assert_eq!(a.admit(1, Duration::from_millis(5), 256), Ok(()));
        // Draining the queue re-opens admission.
        a.on_dequeue(100);
        assert_eq!(a.admit(1, Duration::from_millis(5), 8), Ok(()));
    }

    #[test]
    fn dequeue_saturates_instead_of_underflowing() {
        let a = Admission::new();
        a.on_enqueue(3);
        a.on_dequeue(10);
        assert_eq!(a.queued_rows(), 0);
    }

    #[test]
    fn batch_rows_grows_with_queue_depth() {
        let a = Admission::new();
        assert_eq!(a.batch_rows(64), 64);
        a.on_enqueue(100);
        assert_eq!(a.batch_rows(64), 100);
        a.on_enqueue(10_000);
        assert_eq!(a.batch_rows(64), MAX_BATCH_GROWTH * 64);
        // A degenerate base of 0 still yields a servable batch size.
        assert_eq!(Admission::new().batch_rows(0), 1);
    }
}
