//! Per-connection state: the shared write half, activity tracking for the
//! idle reaper, the in-flight cap, and the exactly-once reply ticket.
//!
//! A [`Conn`] is created at accept time and shared by the reader thread
//! (immediate error replies), the batcher (logit replies), the watchdog
//! (failing in-flight requests after a batcher panic), and the reaper
//! (closing idle sockets). Because three of those can race to answer the
//! same request — batcher vs. restarted batcher vs. watchdog — every
//! admitted query gets a [`Ticket`] whose `reply` is exactly-once: the
//! first caller wins, later callers are no-ops. That is what makes the
//! watchdog safe: it can conservatively fail everything that *looks*
//! in-flight without ever double-replying a request the dying batcher
//! already answered.
//!
//! The write path is also where the network-chaos faults live
//! ([`crate::faults::on_write`]): torn writes and frame corruption are
//! injected here, below the protocol encoder, exactly like a failing NIC
//! or middlebox would.

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::faults::{self, WriteFault};
use crate::wire::{encode_response, ErrorCode, Response};

/// The shared half of one accepted connection.
pub struct Conn {
    /// Accept-order index (0-based per server) — the chaos DSL's `conn=K`.
    id: u64,
    /// Write half (reader keeps the read half). Locked per reply; replies
    /// on one connection may interleave across requests — clients match on
    /// the echoed nonce.
    stream: Mutex<TcpStream>,
    /// Admitted-but-unanswered queries on this connection.
    inflight: AtomicUsize,
    /// Set once the socket is known dead (write failure, reap, injected
    /// disconnect); later sends are dropped without touching the socket.
    closed: AtomicBool,
    /// Activity clock for the idle reaper, as milliseconds since `epoch`.
    epoch: Instant,
    last_active_ms: AtomicU64,
}

impl Conn {
    /// Wraps the write half of an accepted socket. `write_timeout` bounds
    /// every reply write so one dead peer cannot wedge the batcher.
    pub fn new(stream: TcpStream, id: u64, write_timeout: Duration) -> std::io::Result<Self> {
        stream.set_write_timeout(Some(write_timeout))?;
        Ok(Self {
            id,
            stream: Mutex::new(stream),
            inflight: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            epoch: Instant::now(),
            last_active_ms: AtomicU64::new(0),
        })
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    /// Records activity (a completed frame or a reply) for the reaper.
    pub fn touch(&self) {
        self.last_active_ms
            .store(self.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    /// How long this connection has been idle.
    pub fn idle(&self) -> Duration {
        let now = self.epoch.elapsed().as_millis() as u64;
        Duration::from_millis(now.saturating_sub(self.last_active_ms.load(Ordering::Relaxed)))
    }

    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Relaxed)
    }

    /// Force-closes the socket (idle reap, injected disconnect). The
    /// reader's next poll sees EOF and exits; pending sends are dropped.
    pub fn close(&self) {
        if !self.closed.swap(true, Ordering::SeqCst) {
            let stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Best-effort reply: a peer that hung up loses its reply, nobody
    /// else. Chaos write faults (torn write, frame corruption) are
    /// injected here, after encoding — corrupting real bytes on the real
    /// socket, which the client-side CRC must catch.
    pub fn send(&self, resp: &Response) {
        if self.is_closed() {
            return;
        }
        let mut frame = encode_response(resp);
        let fault = faults::on_write(self.id);
        if let Some(WriteFault::Corrupt) = fault {
            // Flip one bit in the last body byte (inside the CRC field):
            // the length prefix still parses, the CRC check must not.
            let n = frame.len();
            frame[n - 1] ^= 0x10;
        }
        let mut stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        let ok = if let Some(WriteFault::Torn) = fault {
            let cut = frame.len() / 2;
            let _ = stream.write_all(&frame[..cut]).and_then(|_| stream.flush());
            let _ = stream.shutdown(Shutdown::Both);
            false
        } else {
            stream
                .write_all(&frame)
                .and_then(|_| stream.flush())
                .is_ok()
        };
        drop(stream);
        if ok {
            self.touch();
        } else {
            // One failed write means the stream offset is gone for the
            // peer; everything later would be garbage mid-frame bytes.
            self.close();
        }
    }
}

/// Exactly-once reply handle for one admitted query.
///
/// Created at admission (counts against the connection's in-flight cap),
/// resolved by whoever answers first — batcher, watchdog, or shutdown
/// path. Also records whether the request was ever *dequeued*: after a
/// batcher panic the watchdog fails only dequeued tickets (the ones the
/// dying batch actually held); still-queued tickets survive and are
/// served normally by the restarted batcher.
pub struct Ticket {
    conn: std::sync::Arc<Conn>,
    nonce: u64,
    dequeued: AtomicBool,
    done: AtomicBool,
}

impl Ticket {
    pub fn new(conn: std::sync::Arc<Conn>, nonce: u64) -> Self {
        conn.inflight.fetch_add(1, Ordering::SeqCst);
        Self {
            conn,
            nonce,
            dequeued: AtomicBool::new(false),
            done: AtomicBool::new(false),
        }
    }

    pub fn nonce(&self) -> u64 {
        self.nonce
    }

    /// Marks the ticket as pulled off the queue by the batcher — the
    /// watchdog's "was it in the dying batcher's hands?" signal.
    pub fn mark_dequeued(&self) {
        self.dequeued.store(true, Ordering::SeqCst);
    }

    pub fn is_dequeued(&self) -> bool {
        self.dequeued.load(Ordering::SeqCst)
    }

    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::SeqCst)
    }

    /// Sends the reply if nobody else has; returns whether this call won.
    pub fn reply(&self, resp: &Response) -> bool {
        if self.done.swap(true, Ordering::SeqCst) {
            return false;
        }
        self.conn.inflight.fetch_sub(1, Ordering::SeqCst);
        self.conn.send(resp);
        true
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        // A ticket dropped unreplied fails LOUDLY: the client gets a typed
        // `Internal` instead of dead air. This is what the batcher-panic
        // unwind hits — the batch's tickets are destroyed before the
        // watchdog can sweep them, and without this reply the peer would
        // block until the idle reaper finally severed the connection. It
        // also releases the in-flight slot, so one lost request cannot
        // permanently shrink the connection's budget.
        if !self.done.swap(true, Ordering::SeqCst) {
            self.conn.inflight.fetch_sub(1, Ordering::SeqCst);
            self.conn.send(&Response::Error {
                nonce: self.nonce,
                code: ErrorCode::Internal,
                retry_after_ms: 0,
                msg: "request dropped by server".into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_response, read_frame, ErrorCode, MAX_BODY};
    use std::net::TcpListener;
    use std::sync::Arc;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn pong(nonce: u64) -> Response {
        Response::Pong { nonce }
    }

    #[test]
    fn send_reaches_the_peer_and_failed_send_closes() {
        let (mut client, server) = pair();
        let conn = Conn::new(server, 0, Duration::from_secs(1)).unwrap();
        conn.send(&pong(9));
        let body = read_frame(&mut client, MAX_BODY).unwrap().unwrap();
        assert_eq!(decode_response(&body).unwrap(), pong(9));
        drop(client);
        // Writes eventually fail once the peer is gone; the conn marks
        // itself closed instead of erroring forever.
        for _ in 0..64 {
            conn.send(&pong(10));
            if conn.is_closed() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(conn.is_closed());
    }

    #[test]
    fn ticket_replies_exactly_once_and_tracks_inflight() {
        let (mut client, server) = pair();
        let conn = Arc::new(Conn::new(server, 0, Duration::from_secs(1)).unwrap());
        let t = Ticket::new(Arc::clone(&conn), 5);
        assert_eq!(conn.inflight(), 1);
        assert!(!t.is_dequeued());
        t.mark_dequeued();
        assert!(t.is_dequeued());
        assert!(t.reply(&pong(5)));
        assert!(!t.reply(&Response::Error {
            nonce: 5,
            code: ErrorCode::Internal,
            retry_after_ms: 0,
            msg: "loser".into(),
        }));
        assert_eq!(conn.inflight(), 0);
        let body = read_frame(&mut client, MAX_BODY).unwrap().unwrap();
        assert_eq!(decode_response(&body).unwrap(), pong(5));
        // Only the winning reply ever hits the wire. (The ticket holds an
        // Arc<Conn>, so drop it first or the socket never closes.)
        drop(t);
        drop(conn);
        assert!(read_frame(&mut client, MAX_BODY).unwrap().is_none());
    }

    #[test]
    fn dropped_ticket_releases_its_slot_and_fails_loudly() {
        let (mut client, server) = pair();
        let conn = Arc::new(Conn::new(server, 0, Duration::from_secs(1)).unwrap());
        let t = Ticket::new(Arc::clone(&conn), 9);
        assert_eq!(conn.inflight(), 1);
        drop(t);
        assert_eq!(conn.inflight(), 0);
        // The peer must hear about the loss: a typed Internal, not dead
        // air (dead air means blocking until the idle reaper gives up).
        let body = read_frame(&mut client, MAX_BODY).unwrap().unwrap();
        match decode_response(&body).unwrap() {
            Response::Error { nonce, code, .. } => {
                assert_eq!(nonce, 9);
                assert_eq!(code, ErrorCode::Internal);
            }
            other => panic!("expected Internal error, got {other:?}"),
        }
    }

    #[test]
    fn idle_clock_resets_on_touch() {
        let (_client, server) = pair();
        let conn = Conn::new(server, 0, Duration::from_secs(1)).unwrap();
        std::thread::sleep(Duration::from_millis(15));
        assert!(conn.idle() >= Duration::from_millis(10));
        conn.touch();
        assert!(conn.idle() < Duration::from_millis(10));
    }
}
