//! The TCP serving loop: accept → decode → admission → batching queue →
//! one dense transform per coalesced batch → per-request replies.
//!
//! Threading model: connection I/O lives on plain OS threads (blocking
//! socket reads poll a shutdown flag via a read timeout), while all dense
//! math inside a batch — the gathers and GEMMs of the forward pass — runs
//! on the shared `sgnn_dense::runtime` worker pool, exactly like training.
//! One *batcher* thread drains the bounded request queue, lingering up to
//! [`ServeConfig::linger`] to coalesce concurrent queries into one
//! transform; the batch-row cap adapts to queue depth
//! ([`Admission::batch_rows`]). A *supervisor* wraps the batcher: if it
//! panics, the supervisor fails every dequeued in-flight request with
//! `Internal` (exactly-once via [`Ticket`]) and restarts the batcher —
//! counted in `serve.batcher_restarts`. An idle-connection *reaper*
//! closes sockets that have been silent past
//! [`ServeConfig::idle_timeout`].
//!
//! Degradation ladder (never a crash, never a hang):
//!
//! 1. malformed / stalled frame → `BadFrame` reply, connection closed
//!    (framing lost; a stalled partial frame is the slowloris case);
//! 2. oversized / out-of-range query → typed reply, connection stays;
//! 3. connection or in-flight cap hit → `Overloaded` reply with a
//!    `retry_after_ms` hint;
//! 4. predicted-hopeless deadline → shed at enqueue with `Overloaded`
//!    (see [`crate::admission`]);
//! 5. full queue → immediate `Backpressure` reply;
//! 6. expired deadline → `Timeout` reply (checked at dequeue *and* again
//!    after the transform);
//! 7. injected/internal batch failure → `Internal` reply to the whole
//!    batch; a batcher *panic* → `Internal` to the dequeued requests and
//!    a batcher restart. The server keeps serving in every case.
//!
//! Request conservation: every `Query` counted in `serve.requests` ends
//! in exactly one bucket —
//! `serve.requests == serve.batches + serve.batch.coalesced + serve.shed
//! + serve.rejected` (batches+coalesced = reached a batch; shed =
//! admission; rejected = `TooLarge` / `Backpressure` / in-flight cap).
//! The batch-reached counters are bumped *before* the fault-injection
//! point in [`run_batch`], so the law survives a batcher panic.
//!
//! Hot reload: a `Reload` admin frame — or a `reload.request` marker file
//! in the bundle directory — makes the batcher load a fresh engine from
//! disk, run its [`ServeEngine::self_test`], and only then swap it in
//! under a new generation tag (invalidating the LRU cache). A bundle that
//! fails to decode, pair, or self-test is discarded and the previous
//! engine keeps serving (`serve.reload.failed`).

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sgnn_obs::{self as obs, Counter, Histogram};

use crate::admission::Admission;
use crate::bundle;
use crate::conn::{Conn, Ticket};
use crate::engine::ServeEngine;
use crate::faults::{self, Injected};
use crate::lru::LruCache;
use crate::wire::{decode_request, ErrorCode, FramePoll, FrameReader, Request, Response, MAX_BODY};

// Request-path observability (ISSUE 8/9): counts, queue/transform latency,
// batch shape, and the self-healing events. `serve.batch` /
// `serve.requests` are CI-required; the chaos smoke additionally requires
// `serve.shed`, `serve.reloads`, and `serve.batcher_restarts`.
static SERVE_REQUESTS: Counter = Counter::new("serve.requests");
static SERVE_BATCHES: Counter = Counter::new("serve.batches");
static SERVE_COALESCED: Counter = Counter::new("serve.batch.coalesced");
static SERVE_CACHE_HIT: Counter = Counter::new("serve.cache.hit");
static SERVE_CACHE_MISS: Counter = Counter::new("serve.cache.miss");
static SERVE_CACHE_INVALIDATED: Counter = Counter::new("serve.cache.invalidated");
static SERVE_BACKPRESSURE: Counter = Counter::new("serve.backpressure");
static SERVE_TIMEOUTS: Counter = Counter::new("serve.timeouts");
static SERVE_BADFRAME: Counter = Counter::new("serve.badframe");
static SERVE_SHED: Counter = Counter::new("serve.shed");
static SERVE_REJECTED: Counter = Counter::new("serve.rejected");
static SERVE_RELOADS: Counter = Counter::new("serve.reloads");
static SERVE_RELOAD_FAILED: Counter = Counter::new("serve.reload.failed");
static SERVE_BATCHER_RESTARTS: Counter = Counter::new("serve.batcher_restarts");
static SERVE_CONN_LIMIT: Counter = Counter::new("serve.conn.limit");
static SERVE_CONN_REAPED: Counter = Counter::new("serve.conn.reaped");
static SERVE_CONN_STALLED: Counter = Counter::new("serve.conn.stalled");
static BATCH_SIZE: Histogram = Histogram::new("serve.batch_size");
static QUEUE_NS: Histogram = Histogram::new("serve.queue_ns");
static TRANSFORM_NS: Histogram = Histogram::new("serve.transform_ns");
static REQUEST_NS: Histogram = Histogram::new("serve.request_ns");

/// Marker file in the bundle directory that triggers a hot reload (the
/// no-admin-client path: `touch reload.request` after replacing the
/// bundle). Consumed (deleted) when the reload is attempted.
pub const RELOAD_MARKER: &str = "reload.request";

#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Base batch-row cap; under load the batcher may grow a batch up to
    /// [`crate::admission::MAX_BATCH_GROWTH`]× this.
    pub max_batch_rows: usize,
    /// How long a non-full batch waits for more requests to coalesce.
    pub linger: Duration,
    /// Bounded queue depth (in requests); beyond it, `Backpressure`.
    pub queue_cap: usize,
    /// LRU capacity in cached node rows; 0 disables the cache.
    pub cache_cap: usize,
    /// Per-query node cap; beyond it, `TooLarge`.
    pub max_nodes_per_query: usize,
    /// Directory holding `model.ckpt` + `terms.bin` for hot reload;
    /// `None` disables the `Reload` frame and the marker file.
    pub bundle_dir: Option<PathBuf>,
    /// Accepted-connection cap; beyond it, `Overloaded` and close.
    pub max_conns: usize,
    /// Admitted-but-unanswered queries allowed per connection.
    pub max_inflight_per_conn: usize,
    /// Connections silent this long (and with nothing in flight) are
    /// closed by the reaper.
    pub idle_timeout: Duration,
    /// A started frame must complete within this (slowloris defense).
    pub frame_deadline: Duration,
    /// Per-socket reply-write timeout.
    pub write_timeout: Duration,
    /// Deadline-aware admission control (sheds with `Overloaded`). Off =
    /// the PR-8 behavior: hopeless requests queue and time out at
    /// dequeue. Exists so the bench can measure shed-vs-noshed.
    pub shed: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_batch_rows: 64,
            linger: Duration::from_micros(500),
            queue_cap: 256,
            cache_cap: 4096,
            max_nodes_per_query: 4096,
            bundle_dir: None,
            max_conns: 256,
            max_inflight_per_conn: 64,
            idle_timeout: Duration::from_secs(60),
            frame_deadline: Duration::from_secs(2),
            write_timeout: Duration::from_secs(5),
            shed: true,
        }
    }
}

/// How often blocking accept/read/recv loops wake to poll shutdown.
const POLL: Duration = Duration::from_millis(20);

/// How often the batcher checks for the reload marker file while idle.
const MARKER_POLL: Duration = Duration::from_millis(200);

/// One admitted query waiting in the batching queue.
struct Pending {
    ticket: Arc<Ticket>,
    nodes: Vec<u32>,
    arrived: Instant,
    deadline: Option<Instant>,
}

/// Queue items: queries to batch, plus admin work the batcher must do
/// because it owns the engine.
enum Job {
    Query(Pending),
    /// `ticket` is `None` for marker-file reloads (nobody to answer).
    Reload {
        ticket: Option<Arc<Ticket>>,
    },
}

/// The engine and everything whose lifetime is tied to the loaded bundle.
/// Shared (not owned by the batcher thread) so the model survives a
/// batcher panic and a restarted batcher resumes with the same state.
struct EngineSlot {
    engine: ServeEngine,
    cache: LruCache,
    /// Monotonic bundle generation; bumped on every successful reload.
    generation: u64,
}

/// State shared across the server's threads.
struct Shared {
    cfg: ServeConfig,
    stop: AtomicBool,
    slot: Mutex<EngineSlot>,
    /// The queue's receive half, shared so a restarted batcher picks up
    /// where the dead one stopped (only one batcher runs at a time).
    rx: Mutex<Receiver<Job>>,
    admission: Admission,
    /// Every admitted query's ticket, for the watchdog sweep. Pruned of
    /// dead weaks on insert past a threshold and on every sweep.
    tickets: Mutex<Vec<Weak<Ticket>>>,
    /// Live connections by accept index, for the reaper and shutdown.
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    next_conn_id: AtomicU64,
    /// Monotonic batch sequence, shared across batcher incarnations so a
    /// restarted batcher does not renumber from zero (and a seq-keyed
    /// injected fault cannot re-fire after the restart it caused).
    batch_seq: AtomicU64,
}

/// Poison-tolerant lock: a panicking batcher must not brick the slot —
/// the data it guards (engine, cache, counters) stays structurally valid
/// because every mutation either completes or is panic-free.
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Registers a ticket for the watchdog sweep.
    fn track(&self, t: &Arc<Ticket>) {
        let mut tickets = lock(&self.tickets);
        if tickets.len() >= 2 * self.cfg.queue_cap.max(64) {
            tickets.retain(|w| w.strong_count() > 0);
        }
        tickets.push(Arc::downgrade(t));
    }

    /// Watchdog sweep after a batcher panic: fail everything the dying
    /// batcher had in its hands. Still-queued tickets are left alone —
    /// the restarted batcher serves them normally.
    fn fail_dequeued_inflight(&self) {
        let mut tickets = lock(&self.tickets);
        tickets.retain(|w| match w.upgrade() {
            Some(t) => {
                if t.is_dequeued() && !t.is_done() {
                    t.reply(&Response::Error {
                        nonce: t.nonce(),
                        code: ErrorCode::Internal,
                        retry_after_ms: 0,
                        msg: "batcher restarted".into(),
                    });
                }
                !t.is_done()
            }
            None => false,
        });
    }
}

/// A running server; dropping (or calling [`shutdown`](Self::shutdown))
/// stops the accept loop, drains the threads, and joins them.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals every loop to stop and joins all server threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Accept has exited, so the reader list is final; readers notice
        // the flag at their next read timeout.
        let readers = std::mem::take(&mut *lock(&self.readers));
        for h in readers {
            let _ = h.join();
        }
        if let Some(h) = self.reaper.take() {
            let _ = h.join();
        }
        // All queue senders are gone now; the batcher drains and exits,
        // and the supervisor sees a clean exit.
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Boots a server for `engine` and returns once the socket is listening.
pub fn serve(engine: ServeEngine, cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_cap);
    let shared = Arc::new(Shared {
        slot: Mutex::new(EngineSlot {
            engine,
            cache: LruCache::new(cfg.cache_cap),
            generation: 0,
        }),
        cfg,
        stop: AtomicBool::new(false),
        rx: Mutex::new(rx),
        admission: Admission::new(),
        tickets: Mutex::new(Vec::new()),
        conns: Mutex::new(HashMap::new()),
        next_conn_id: AtomicU64::new(0),
        batch_seq: AtomicU64::new(0),
    });
    let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let supervisor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("sgnn-serve-supervise".into())
            .spawn(move || supervisor_loop(&shared))?
    };

    let reaper = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("sgnn-serve-reap".into())
            .spawn(move || reaper_loop(&shared))?
    };

    let accept = {
        let shared = Arc::clone(&shared);
        let readers = Arc::clone(&readers);
        std::thread::Builder::new()
            .name("sgnn-serve-accept".into())
            .spawn(move || accept_loop(listener, tx, readers, &shared))?
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        supervisor: Some(supervisor),
        reaper: Some(reaper),
        readers,
    })
}

fn accept_loop(
    listener: TcpListener,
    tx: SyncSender<Job>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shared: &Arc<Shared>,
) {
    while !shared.stopped() {
        match listener.accept() {
            Ok((stream, _)) => {
                let id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                let Ok(conn) = Conn::new(write_half, id, shared.cfg.write_timeout) else {
                    continue;
                };
                let conn = Arc::new(conn);
                conn.touch();
                // Injected `disconnect conn=K`: the peer sees an abrupt
                // hangup before any reply — clients must cope.
                if faults::on_accept(id) {
                    conn.close();
                    continue;
                }
                if lock(&shared.conns).len() >= shared.cfg.max_conns {
                    SERVE_CONN_LIMIT.incr();
                    conn.send(&Response::Error {
                        nonce: 0,
                        code: ErrorCode::Overloaded,
                        retry_after_ms: 100,
                        msg: format!("connection limit ({}) reached", shared.cfg.max_conns),
                    });
                    conn.close();
                    continue;
                }
                lock(&shared.conns).insert(id, Arc::clone(&conn));
                let tx = tx.clone();
                let shared2 = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("sgnn-serve-conn".into())
                    .spawn(move || {
                        reader_loop(stream, conn, tx, &shared2);
                        lock(&shared2.conns).remove(&id);
                    })
                    .expect("spawn connection reader");
                let mut readers = lock(&readers);
                // Reap finished reader handles so a long-lived server does
                // not accumulate one JoinHandle per connection ever made.
                if readers.len() >= 2 * shared.cfg.max_conns {
                    readers.retain(|h| !h.is_finished());
                }
                readers.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Closes connections idle past the configured timeout (with nothing in
/// flight). The reader thread sees EOF on its next poll and exits.
fn reaper_loop(shared: &Arc<Shared>) {
    while !shared.stopped() {
        std::thread::sleep(POLL);
        let idle_timeout = shared.cfg.idle_timeout;
        let victims: Vec<Arc<Conn>> = lock(&shared.conns)
            .values()
            .filter(|c| c.inflight() == 0 && c.idle() >= idle_timeout && !c.is_closed())
            .map(Arc::clone)
            .collect();
        for conn in victims {
            SERVE_CONN_REAPED.incr();
            conn.close();
        }
    }
}

fn reader_loop(mut stream: TcpStream, conn: Arc<Conn>, tx: SyncSender<Job>, shared: &Arc<Shared>) {
    // The read timeout doubles as the shutdown poll interval.
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut frames = FrameReader::new();
    while !shared.stopped() && !conn.is_closed() {
        // Injected `stall conn=K`: this connection's reader dawdles, as
        // if the peer (or the path to it) were glacially slow.
        if let Some(delay) = faults::on_conn_read(conn.id()) {
            std::thread::sleep(delay);
        }
        let body = match frames.poll(&mut stream, MAX_BODY, shared.cfg.frame_deadline) {
            FramePoll::Frame(body) => body,
            FramePoll::Eof => return, // clean close
            FramePoll::Pending => continue,
            FramePoll::Stalled => {
                // Rung 1 (slowloris): a peer that starts a frame must
                // finish it; reply, then close.
                SERVE_CONN_STALLED.incr();
                SERVE_BADFRAME.incr();
                conn.send(&Response::Error {
                    nonce: 0,
                    code: ErrorCode::BadFrame,
                    retry_after_ms: 0,
                    msg: format!(
                        "partial frame exceeded {:?} deadline",
                        shared.cfg.frame_deadline
                    ),
                });
                conn.close();
                return;
            }
            FramePoll::Io(_) => return, // torn frame / dead peer
            FramePoll::TooLarge(len) => {
                // Rung 1: after a frame this malformed the stream offset
                // is unrecoverable.
                SERVE_BADFRAME.incr();
                conn.send(&Response::Error {
                    nonce: 0,
                    code: ErrorCode::BadFrame,
                    retry_after_ms: 0,
                    msg: format!("declared body of {len} bytes exceeds cap"),
                });
                conn.close();
                return;
            }
        };
        conn.touch();
        let req = match decode_request(&body) {
            Ok(req) => req,
            Err(e) => {
                SERVE_BADFRAME.incr();
                conn.send(&Response::Error {
                    nonce: 0,
                    code: ErrorCode::BadFrame,
                    retry_after_ms: 0,
                    msg: e.to_string(),
                });
                conn.close();
                return;
            }
        };
        match req {
            Request::Ping { nonce } => conn.send(&Response::Pong { nonce }),
            Request::Reload { nonce } => {
                if shared.cfg.bundle_dir.is_none() {
                    conn.send(&Response::Error {
                        nonce,
                        code: ErrorCode::Internal,
                        retry_after_ms: 0,
                        msg: "server was not booted with a bundle directory".into(),
                    });
                    continue;
                }
                let ticket = Arc::new(Ticket::new(Arc::clone(&conn), nonce));
                shared.track(&ticket);
                match tx.try_send(Job::Reload {
                    ticket: Some(Arc::clone(&ticket)),
                }) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        ticket.reply(&Response::Error {
                            nonce,
                            code: ErrorCode::Backpressure,
                            retry_after_ms: 50,
                            msg: "queue full; retry reload".into(),
                        });
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        ticket.reply(&Response::Error {
                            nonce,
                            code: ErrorCode::Shutdown,
                            retry_after_ms: 0,
                            msg: "server shutting down".into(),
                        });
                        return;
                    }
                }
            }
            Request::Query {
                nonce,
                deadline_ms,
                nodes,
            } => {
                SERVE_REQUESTS.incr();
                if nodes.is_empty() || nodes.len() > shared.cfg.max_nodes_per_query {
                    // Rung 2: typed refusal, connection stays.
                    SERVE_REJECTED.incr();
                    conn.send(&Response::Error {
                        nonce,
                        code: ErrorCode::TooLarge,
                        retry_after_ms: 0,
                        msg: format!(
                            "{} nodes (allowed 1..={})",
                            nodes.len(),
                            shared.cfg.max_nodes_per_query
                        ),
                    });
                    continue;
                }
                if conn.inflight() >= shared.cfg.max_inflight_per_conn {
                    // Rung 3: one connection cannot monopolize the queue.
                    SERVE_REJECTED.incr();
                    conn.send(&Response::Error {
                        nonce,
                        code: ErrorCode::Overloaded,
                        retry_after_ms: 10,
                        msg: format!(
                            "{} requests in flight on this connection (cap {})",
                            conn.inflight(),
                            shared.cfg.max_inflight_per_conn
                        ),
                    });
                    continue;
                }
                let arrived = Instant::now();
                let deadline =
                    (deadline_ms > 0).then(|| arrived + Duration::from_millis(deadline_ms as u64));
                // Rung 4: shed requests whose deadline the queue has
                // already spent. Only deadline-bearing requests shed.
                if shared.cfg.shed && deadline_ms > 0 {
                    // The drain estimate assumes the batch growth the
                    // batcher would actually use at this queue depth.
                    let batch_rows = shared.admission.batch_rows(shared.cfg.max_batch_rows);
                    if let Err(retry_after_ms) = shared.admission.admit(
                        nodes.len(),
                        Duration::from_millis(deadline_ms as u64),
                        batch_rows,
                    ) {
                        SERVE_SHED.incr();
                        conn.send(&Response::Error {
                            nonce,
                            code: ErrorCode::Overloaded,
                            retry_after_ms,
                            msg: "shed: deadline unreachable at current queue depth".into(),
                        });
                        continue;
                    }
                }
                let rows = nodes.len();
                let ticket = Arc::new(Ticket::new(Arc::clone(&conn), nonce));
                shared.track(&ticket);
                let pending = Pending {
                    ticket: Arc::clone(&ticket),
                    nodes,
                    arrived,
                    deadline,
                };
                match tx.try_send(Job::Query(pending)) {
                    Ok(()) => shared.admission.on_enqueue(rows),
                    Err(TrySendError::Full(_)) => {
                        // Rung 5: bounded queue, typed refusal, no hang.
                        SERVE_BACKPRESSURE.incr();
                        SERVE_REJECTED.incr();
                        ticket.reply(&Response::Error {
                            nonce,
                            code: ErrorCode::Backpressure,
                            retry_after_ms: 20,
                            msg: "batch queue full".into(),
                        });
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        ticket.reply(&Response::Error {
                            nonce,
                            code: ErrorCode::Shutdown,
                            retry_after_ms: 0,
                            msg: "server shutting down".into(),
                        });
                        return;
                    }
                }
            }
        }
    }
}

/// Spawns the batcher and restarts it when (and only when) it panics.
/// Each restart first fails every request the dead batcher had dequeued,
/// so no client is left waiting on a reply that will never come.
fn supervisor_loop(shared: &Arc<Shared>) {
    loop {
        let shared2 = Arc::clone(shared);
        let batcher = std::thread::Builder::new()
            .name("sgnn-serve-batch".into())
            .spawn(move || batcher_loop(&shared2))
            .expect("spawn batcher");
        match batcher.join() {
            Ok(()) => return, // clean exit: shutdown or queue closed
            Err(_) => {
                SERVE_BATCHER_RESTARTS.incr();
                shared.fail_dequeued_inflight();
                if shared.stopped() {
                    return;
                }
            }
        }
    }
}

fn batcher_loop(shared: &Arc<Shared>) {
    // Holding the receiver lock for the whole loop is fine — exactly one
    // batcher runs at a time; the lock exists so a *restarted* batcher
    // can take over the queue from its dead predecessor.
    let rx = lock(&shared.rx);
    let mut last_marker_check = Instant::now();
    loop {
        let first = match rx.recv_timeout(POLL) {
            Ok(Job::Query(p)) => p,
            Ok(Job::Reload { ticket }) => {
                do_reload(shared, ticket);
                continue;
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.stopped() {
                    return;
                }
                if last_marker_check.elapsed() >= MARKER_POLL {
                    last_marker_check = Instant::now();
                    if take_reload_marker(shared) {
                        do_reload(shared, None);
                    }
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        first.ticket.mark_dequeued();
        shared.admission.on_dequeue(first.nodes.len());
        let mut batch = vec![first];
        let mut rows = batch[0].nodes.len();
        let mut reloads: Vec<Option<Arc<Ticket>>> = Vec::new();
        // Linger: hold the batch open briefly so concurrent queries ride
        // the same transform. A full batch closes immediately; under load
        // the row cap grows with queue depth (adaptive batching).
        let max_rows = shared.admission.batch_rows(shared.cfg.max_batch_rows);
        let close_at = Instant::now() + shared.cfg.linger;
        while rows < max_rows {
            let now = Instant::now();
            if now >= close_at {
                break;
            }
            match rx.recv_timeout(close_at - now) {
                Ok(Job::Query(p)) => {
                    p.ticket.mark_dequeued();
                    shared.admission.on_dequeue(p.nodes.len());
                    rows += p.nodes.len();
                    batch.push(p);
                }
                // A reload behind queries runs *after* them: those
                // queries were admitted under the old generation.
                Ok(Job::Reload { ticket }) => reloads.push(ticket),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let seq = shared.batch_seq.fetch_add(1, Ordering::SeqCst);
        // The admission estimator observes the *whole* batch service time
        // — transform, cache fills, reply fan-out, and any injected slow
        // fault — because that is what a queued request actually waits
        // behind. (The obs `serve.transform_ns` histogram stays
        // transform-only, and records only while tracing.)
        let t0 = Instant::now();
        run_batch(shared, batch, seq);
        shared.admission.record_batch(rows, t0.elapsed());
        for ticket in reloads {
            do_reload(shared, ticket);
        }
    }
}

/// Consumes the reload marker file if present.
fn take_reload_marker(shared: &Shared) -> bool {
    let Some(dir) = shared.cfg.bundle_dir.as_ref() else {
        return false;
    };
    let marker = dir.join(RELOAD_MARKER);
    if marker.exists() {
        let _ = std::fs::remove_file(&marker);
        return true;
    }
    false
}

/// Loads a fresh engine from the bundle directory, self-tests it, and
/// swaps it in under a new generation. Any failure — I/O, codec, pairing,
/// self-test, even a panic inside the loader — leaves the previous engine
/// serving (rollback by not swapping).
fn do_reload(shared: &Shared, ticket: Option<Arc<Ticket>>) {
    let fail = |msg: String| {
        SERVE_RELOAD_FAILED.incr();
        if let Some(t) = &ticket {
            t.reply(&Response::Error {
                nonce: t.nonce(),
                code: ErrorCode::Internal,
                retry_after_ms: 0,
                msg,
            });
        }
    };
    let Some(dir) = shared.cfg.bundle_dir.clone() else {
        fail("server was not booted with a bundle directory".into());
        return;
    };
    let _sp = obs::span!("serve.reload");
    // Load + self-test happen entirely *outside* the engine slot lock, so
    // a loader that fails — or panics — cannot poison the slot; the swap
    // below is the only section that touches the live engine.
    let loaded = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let mut engine = bundle::load_engine(&dir).map_err(|e| e.to_string())?;
        engine.self_test().map_err(|e| e.to_string())?;
        Ok::<ServeEngine, String>(engine)
    }));
    let engine = match loaded {
        Ok(Ok(engine)) => engine,
        Ok(Err(msg)) => {
            fail(format!("bundle rejected, previous engine kept: {msg}"));
            return;
        }
        Err(_) => {
            fail("bundle loader panicked, previous engine kept".into());
            return;
        }
    };
    let mut slot = lock(&shared.slot);
    slot.generation += 1;
    slot.engine = engine;
    let generation = slot.generation;
    let dropped = slot.cache.invalidate(generation);
    drop(slot);
    SERVE_CACHE_INVALIDATED.add(dropped as u64);
    SERVE_RELOADS.incr();
    if let Some(t) = &ticket {
        t.reply(&Response::Reloaded {
            nonce: t.nonce(),
            generation,
        });
    }
}

fn run_batch(shared: &Shared, batch: Vec<Pending>, seq: u64) {
    let requests = batch.len();
    let rows: usize = batch.iter().map(|p| p.nodes.len()).sum();
    let _sp = obs::span!("serve.batch", requests = requests, rows = rows);
    // Conservation law: count the batch as "reached" *before* anything
    // that can fail or panic, so
    // requests == batches + coalesced + shed + rejected
    // holds even across a watchdog restart.
    SERVE_BATCHES.incr();
    if requests > 1 {
        SERVE_COALESCED.add(requests as u64 - 1);
    }
    BATCH_SIZE.record(rows as u64);
    for p in &batch {
        QUEUE_NS.record_duration(p.arrived.elapsed());
    }

    // Injected faults fire before the deadline checks, so a `slow` fault
    // deterministically expires short-deadline requests.
    match faults::on_batch(seq) {
        Some(Injected::Fail) => {
            for p in &batch {
                p.ticket.reply(&Response::Error {
                    nonce: p.ticket.nonce(),
                    code: ErrorCode::Internal,
                    retry_after_ms: 0,
                    msg: "injected batch failure".into(),
                });
            }
            return;
        }
        Some(Injected::Panic) => {
            // The watchdog test vector: tickets are already dequeued, so
            // the supervisor fails them and restarts the batcher.
            panic!("injected batcher panic (batch {seq})");
        }
        None => {}
    }

    // Rung 6a: drop requests that expired while queued.
    let now = Instant::now();
    let (batch, expired): (Vec<_>, Vec<_>) = batch
        .into_iter()
        .partition(|p| p.deadline.is_none_or(|d| now < d));
    for p in expired {
        SERVE_TIMEOUTS.incr();
        p.ticket.reply(&Response::Error {
            nonce: p.ticket.nonce(),
            code: ErrorCode::Timeout,
            retry_after_ms: 0,
            msg: "deadline expired in queue".into(),
        });
    }
    if batch.is_empty() {
        return;
    }

    let mut slot = lock(&shared.slot);
    let slot = &mut *slot;
    let nodes_in_graph = slot.engine.nodes() as u32;

    // Validate ids (rung 2) and split the surviving rows into cache hits
    // and a deduplicated miss list.
    let mut resolved: HashMap<u32, std::sync::Arc<[f32]>> = HashMap::new();
    let mut misses: Vec<u32> = Vec::new();
    let (mut hits, mut miss_rows) = (0u64, 0u64);
    let mut valid = Vec::with_capacity(batch.len());
    'req: for p in batch {
        for &id in &p.nodes {
            if id >= nodes_in_graph {
                p.ticket.reply(&Response::Error {
                    nonce: p.ticket.nonce(),
                    code: ErrorCode::NodeOutOfRange,
                    retry_after_ms: 0,
                    msg: format!("node {id} >= {nodes_in_graph}"),
                });
                continue 'req;
            }
        }
        for &id in &p.nodes {
            if resolved.contains_key(&id) || misses.contains(&id) {
                continue;
            }
            if let Some(row) = slot.cache.get(id) {
                hits += 1;
                resolved.insert(id, row);
            } else {
                miss_rows += 1;
                misses.push(id);
            }
        }
        valid.push(p);
    }
    SERVE_CACHE_HIT.add(hits);
    SERVE_CACHE_MISS.add(miss_rows);

    // One dense transform for every miss in the coalesced batch.
    if !misses.is_empty() {
        let t0 = Instant::now();
        let logits = slot.engine.logits(&misses);
        TRANSFORM_NS.record_duration(t0.elapsed());
        for (r, &id) in misses.iter().enumerate() {
            let row: std::sync::Arc<[f32]> =
                std::sync::Arc::from(logits.row(r).to_vec().into_boxed_slice());
            slot.cache.put(id, std::sync::Arc::clone(&row));
            resolved.insert(id, row);
        }
    }

    // Assemble and send replies; rung 6b re-checks deadlines after the
    // transform (it may have been slowed by an injected fault or load).
    let classes = slot.engine.classes();
    let now = Instant::now();
    for p in valid {
        if p.deadline.is_some_and(|d| now >= d) {
            SERVE_TIMEOUTS.incr();
            p.ticket.reply(&Response::Error {
                nonce: p.ticket.nonce(),
                code: ErrorCode::Timeout,
                retry_after_ms: 0,
                msg: "deadline expired during transform".into(),
            });
            continue;
        }
        let mut data = Vec::with_capacity(p.nodes.len() * classes);
        for id in &p.nodes {
            data.extend_from_slice(&resolved[id]);
        }
        p.ticket.reply(&Response::Logits {
            nonce: p.ticket.nonce(),
            rows: p.nodes.len() as u32,
            cols: classes as u32,
            data,
        });
        REQUEST_NS.record_duration(p.arrived.elapsed());
    }
}
