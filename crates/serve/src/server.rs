//! The TCP serving loop: accept → decode → batching queue → one dense
//! transform per coalesced batch → per-request replies.
//!
//! Threading model: connection I/O lives on plain OS threads (blocking
//! socket reads poll a shutdown flag via a read timeout), while all dense
//! math inside a batch — the gathers and GEMMs of the forward pass — runs
//! on the shared `sgnn_dense::runtime` worker pool, exactly like training.
//! One *batcher* thread owns the [`ServeEngine`] and the LRU cache; it
//! drains the bounded request queue, lingering up to
//! [`ServeConfig::linger`] to coalesce concurrent queries into one
//! transform of at most [`ServeConfig::max_batch_rows`] rows.
//!
//! Degradation ladder (never a crash, never a hang):
//!
//! 1. malformed frame → `BadFrame` reply, connection closed (framing lost);
//! 2. oversized / out-of-range query → typed reply, connection stays;
//! 3. full queue → immediate `Backpressure` reply;
//! 4. expired deadline → `Timeout` reply (checked at dequeue *and* again
//!    after the transform);
//! 5. injected/internal batch failure → `Internal` reply to the whole
//!    batch, server keeps serving.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sgnn_obs::{self as obs, Counter, Histogram};

use crate::engine::ServeEngine;
use crate::faults::{self, Injected};
use crate::lru::LruCache;
use crate::wire::{
    self, decode_request, encode_response, ErrorCode, FrameIo, Request, Response, MAX_BODY,
};

// Request-path observability (ISSUE 8): counts, queue/transform latency,
// and batch shape. `serve.batch` / `serve.requests` are CI-required.
static SERVE_REQUESTS: Counter = Counter::new("serve.requests");
static SERVE_BATCHES: Counter = Counter::new("serve.batches");
static SERVE_COALESCED: Counter = Counter::new("serve.batch.coalesced");
static SERVE_CACHE_HIT: Counter = Counter::new("serve.cache.hit");
static SERVE_CACHE_MISS: Counter = Counter::new("serve.cache.miss");
static SERVE_BACKPRESSURE: Counter = Counter::new("serve.backpressure");
static SERVE_TIMEOUTS: Counter = Counter::new("serve.timeouts");
static SERVE_BADFRAME: Counter = Counter::new("serve.badframe");
static BATCH_SIZE: Histogram = Histogram::new("serve.batch_size");
static QUEUE_NS: Histogram = Histogram::new("serve.queue_ns");
static TRANSFORM_NS: Histogram = Histogram::new("serve.transform_ns");
static REQUEST_NS: Histogram = Histogram::new("serve.request_ns");

#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// A batch closes once it holds this many node rows.
    pub max_batch_rows: usize,
    /// How long a non-full batch waits for more requests to coalesce.
    pub linger: Duration,
    /// Bounded queue depth (in requests); beyond it, `Backpressure`.
    pub queue_cap: usize,
    /// LRU capacity in cached node rows; 0 disables the cache.
    pub cache_cap: usize,
    /// Per-query node cap; beyond it, `TooLarge`.
    pub max_nodes_per_query: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_batch_rows: 64,
            linger: Duration::from_micros(500),
            queue_cap: 256,
            cache_cap: 4096,
            max_nodes_per_query: 4096,
        }
    }
}

/// How often blocking accept/read/recv loops wake to poll shutdown.
const POLL: Duration = Duration::from_millis(20);

/// One decoded query waiting in the batching queue.
struct Pending {
    nonce: u64,
    nodes: Vec<u32>,
    arrived: Instant,
    deadline: Option<Instant>,
    conn: Arc<ConnWriter>,
}

/// The write half of a connection, shared by the reader thread (immediate
/// error replies) and the batcher (logit replies). Replies on one
/// connection may arrive out of submission order — clients match on the
/// echoed nonce.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    /// Best-effort send: a peer that hung up loses its reply, nobody else.
    fn send(&self, resp: &Response) {
        let frame = encode_response(resp);
        let mut stream = self.stream.lock().unwrap();
        let _ = stream.write_all(&frame).and_then(|_| stream.flush());
    }
}

/// A running server; dropping (or calling [`shutdown`](Self::shutdown))
/// stops the accept loop, drains the threads, and joins them.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals every loop to stop and joins all server threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Accept has exited, so the reader list is final; readers notice
        // the flag at their next read timeout.
        let readers = std::mem::take(&mut *self.readers.lock().unwrap());
        for h in readers {
            let _ = h.join();
        }
        // All queue senders are gone now; the batcher drains and exits.
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Boots a server for `engine` and returns once the socket is listening.
pub fn serve(engine: ServeEngine, cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::sync_channel::<Pending>(cfg.queue_cap);
    let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let batcher = {
        let stop = Arc::clone(&stop);
        let cfg = cfg.clone();
        std::thread::Builder::new()
            .name("sgnn-serve-batch".into())
            .spawn(move || batcher_loop(engine, rx, &cfg, &stop))?
    };

    let accept = {
        let stop = Arc::clone(&stop);
        let readers = Arc::clone(&readers);
        let cfg = cfg.clone();
        std::thread::Builder::new()
            .name("sgnn-serve-accept".into())
            .spawn(move || accept_loop(listener, tx, readers, &cfg, &stop))?
    };

    Ok(ServerHandle {
        addr,
        stop,
        accept: Some(accept),
        batcher: Some(batcher),
        readers,
    })
}

fn accept_loop(
    listener: TcpListener,
    tx: SyncSender<Pending>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    cfg: &ServeConfig,
    stop: &Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                let stop = Arc::clone(stop);
                let cfg = cfg.clone();
                let handle = std::thread::Builder::new()
                    .name("sgnn-serve-conn".into())
                    .spawn(move || reader_loop(stream, tx, &cfg, &stop))
                    .expect("spawn connection reader");
                readers.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn reader_loop(stream: TcpStream, tx: SyncSender<Pending>, cfg: &ServeConfig, stop: &AtomicBool) {
    // The read timeout doubles as the shutdown poll interval.
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter {
            stream: Mutex::new(w),
        }),
        Err(_) => return,
    };
    let mut stream = stream;
    while !stop.load(Ordering::SeqCst) {
        let body = match wire::read_frame(&mut stream, MAX_BODY) {
            Ok(Some(body)) => body,
            Ok(None) => return, // clean close
            Err(FrameIo::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(FrameIo::Io(_)) => return, // torn frame / dead peer
            Err(FrameIo::TooLarge(len)) => {
                // Rung 1 of the ladder: reply, then close — after a frame
                // this malformed the stream offset is unrecoverable.
                SERVE_BADFRAME.incr();
                writer.send(&Response::Error {
                    nonce: 0,
                    code: ErrorCode::BadFrame,
                    msg: format!("declared body of {len} bytes exceeds cap"),
                });
                return;
            }
        };
        let req = match decode_request(&body) {
            Ok(req) => req,
            Err(e) => {
                SERVE_BADFRAME.incr();
                writer.send(&Response::Error {
                    nonce: 0,
                    code: ErrorCode::BadFrame,
                    msg: e.to_string(),
                });
                return;
            }
        };
        match req {
            Request::Ping { nonce } => writer.send(&Response::Pong { nonce }),
            Request::Query {
                nonce,
                deadline_ms,
                nodes,
            } => {
                SERVE_REQUESTS.incr();
                if nodes.is_empty() || nodes.len() > cfg.max_nodes_per_query {
                    writer.send(&Response::Error {
                        nonce,
                        code: ErrorCode::TooLarge,
                        msg: format!(
                            "{} nodes (allowed 1..={})",
                            nodes.len(),
                            cfg.max_nodes_per_query
                        ),
                    });
                    continue;
                }
                let arrived = Instant::now();
                let deadline =
                    (deadline_ms > 0).then(|| arrived + Duration::from_millis(deadline_ms as u64));
                let pending = Pending {
                    nonce,
                    nodes,
                    arrived,
                    deadline,
                    conn: Arc::clone(&writer),
                };
                match tx.try_send(pending) {
                    Ok(()) => {}
                    Err(TrySendError::Full(p)) => {
                        // Rung 3: bounded queue, typed refusal, no hang.
                        SERVE_BACKPRESSURE.incr();
                        p.conn.send(&Response::Error {
                            nonce: p.nonce,
                            code: ErrorCode::Backpressure,
                            msg: "batch queue full".into(),
                        });
                    }
                    Err(TrySendError::Disconnected(p)) => {
                        p.conn.send(&Response::Error {
                            nonce: p.nonce,
                            code: ErrorCode::Shutdown,
                            msg: "server shutting down".into(),
                        });
                        return;
                    }
                }
            }
        }
    }
}

fn batcher_loop(
    mut engine: ServeEngine,
    rx: Receiver<Pending>,
    cfg: &ServeConfig,
    stop: &AtomicBool,
) {
    let nodes_in_graph = engine.nodes() as u32;
    let mut cache = LruCache::new(cfg.cache_cap);
    let mut seq: u64 = 0;
    loop {
        let first = match rx.recv_timeout(POLL) {
            Ok(p) => p,
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let mut batch = vec![first];
        let mut rows = batch[0].nodes.len();
        // Linger: hold the batch open briefly so concurrent queries ride
        // the same transform. A full batch closes immediately.
        let close_at = Instant::now() + cfg.linger;
        while rows < cfg.max_batch_rows {
            let now = Instant::now();
            if now >= close_at {
                break;
            }
            match rx.recv_timeout(close_at - now) {
                Ok(p) => {
                    rows += p.nodes.len();
                    batch.push(p);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        run_batch(&mut engine, &mut cache, batch, nodes_in_graph, seq);
        seq += 1;
    }
}

fn run_batch(
    engine: &mut ServeEngine,
    cache: &mut LruCache,
    batch: Vec<Pending>,
    nodes_in_graph: u32,
    seq: u64,
) {
    let requests = batch.len();
    let rows: usize = batch.iter().map(|p| p.nodes.len()).sum();
    let _sp = obs::span!("serve.batch", requests = requests, rows = rows);
    SERVE_BATCHES.incr();
    if requests > 1 {
        SERVE_COALESCED.add(requests as u64 - 1);
    }
    BATCH_SIZE.record(rows as u64);
    for p in &batch {
        QUEUE_NS.record_duration(p.arrived.elapsed());
    }

    // Injected faults fire before the deadline checks, so a `slow` fault
    // deterministically expires short-deadline requests.
    let injected = faults::on_batch(seq);
    if injected == Some(Injected::Fail) {
        for p in &batch {
            p.conn.send(&Response::Error {
                nonce: p.nonce,
                code: ErrorCode::Internal,
                msg: "injected batch failure".into(),
            });
        }
        return;
    }

    // Rung 4a: drop requests that expired while queued.
    let now = Instant::now();
    let (batch, expired): (Vec<_>, Vec<_>) = batch
        .into_iter()
        .partition(|p| p.deadline.is_none_or(|d| now < d));
    for p in expired {
        SERVE_TIMEOUTS.incr();
        p.conn.send(&Response::Error {
            nonce: p.nonce,
            code: ErrorCode::Timeout,
            msg: "deadline expired in queue".into(),
        });
    }
    if batch.is_empty() {
        return;
    }

    // Validate ids (rung 2) and split the surviving rows into cache hits
    // and a deduplicated miss list.
    let mut resolved: HashMap<u32, std::sync::Arc<[f32]>> = HashMap::new();
    let mut misses: Vec<u32> = Vec::new();
    let (mut hits, mut miss_rows) = (0u64, 0u64);
    let mut valid = Vec::with_capacity(batch.len());
    'req: for p in batch {
        for &id in &p.nodes {
            if id >= nodes_in_graph {
                p.conn.send(&Response::Error {
                    nonce: p.nonce,
                    code: ErrorCode::NodeOutOfRange,
                    msg: format!("node {id} >= {nodes_in_graph}"),
                });
                continue 'req;
            }
        }
        for &id in &p.nodes {
            if resolved.contains_key(&id) || misses.contains(&id) {
                continue;
            }
            if let Some(row) = cache.get(id) {
                hits += 1;
                resolved.insert(id, row);
            } else {
                miss_rows += 1;
                misses.push(id);
            }
        }
        valid.push(p);
    }
    SERVE_CACHE_HIT.add(hits);
    SERVE_CACHE_MISS.add(miss_rows);

    // One dense transform for every miss in the coalesced batch.
    if !misses.is_empty() {
        let t0 = Instant::now();
        let logits = engine.logits(&misses);
        TRANSFORM_NS.record_duration(t0.elapsed());
        for (r, &id) in misses.iter().enumerate() {
            let row: std::sync::Arc<[f32]> =
                std::sync::Arc::from(logits.row(r).to_vec().into_boxed_slice());
            cache.put(id, std::sync::Arc::clone(&row));
            resolved.insert(id, row);
        }
    }

    // Assemble and send replies; rung 4b re-checks deadlines after the
    // transform (it may have been slowed by an injected fault or load).
    let classes = engine.classes();
    let now = Instant::now();
    for p in valid {
        if p.deadline.is_some_and(|d| now >= d) {
            SERVE_TIMEOUTS.incr();
            p.conn.send(&Response::Error {
                nonce: p.nonce,
                code: ErrorCode::Timeout,
                msg: "deadline expired during transform".into(),
            });
            continue;
        }
        let mut data = Vec::with_capacity(p.nodes.len() * classes);
        for id in &p.nodes {
            data.extend_from_slice(&resolved[id]);
        }
        p.conn.send(&Response::Logits {
            nonce: p.nonce,
            rows: p.nodes.len() as u32,
            cols: classes as u32,
            data,
        });
        REQUEST_NS.record_duration(p.arrived.elapsed());
    }
}
