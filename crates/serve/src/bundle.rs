//! A serving bundle: the two artifacts a server directory holds.
//!
//! * `model.ckpt` — the final-state training [`Snapshot`] in the PR-4
//!   `SGNNCKPT` codec (magic, version, CRC, atomic write), unchanged.
//! * `terms.bin` — the propagated terms in the `SGNNTERM` codec.
//!
//! The two are **paired**: both record the producing run's seed and
//! structural config tag, and [`load_engine`] refuses to combine artifacts
//! from different runs — serving a model against someone else's terms
//! would produce well-formed garbage.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use sgnn_core::SpectralFilter;
use sgnn_data::Dataset;
use sgnn_train::checkpoint;
use sgnn_train::{try_train_mini_batch_trained, MbTrained, TrainConfig, TrainReport};

use crate::artifact::{self, ServeMeta};
use crate::engine::{ServeEngine, ServeError};

pub const CKPT_FILE: &str = "model.ckpt";
pub const TERMS_FILE: &str = "terms.bin";

/// Atomic small-file write: `.tmp` + fsync + rename, same discipline as the
/// checkpoint writer.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
    let tmp = path.with_extension("tmp");
    (|| -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })()
    .map_err(|e| ServeError::Io(format!("{}: {e}", path.display())))
}

/// Exports a trained run as a serving bundle under `dir` (created if
/// missing). Returns the two artifact paths.
pub fn export(
    dir: &Path,
    trained: &MbTrained,
    cfg: &TrainConfig,
    data: &Dataset,
) -> Result<(PathBuf, PathBuf), ServeError> {
    std::fs::create_dir_all(dir).map_err(|e| ServeError::Io(format!("{}: {e}", dir.display())))?;
    let meta = ServeMeta {
        filter: trained.report.filter.clone(),
        // The constructor argument the run used (`make_filter(name, hops)`),
        // not the filter's effective hop count — the engine re-invokes the
        // same constructor.
        hops: cfg.hops,
        hidden: cfg.hidden,
        dropout: cfg.dropout,
        in_dim: data.features.cols(),
        num_classes: data.num_classes,
        nodes: data.nodes(),
        seed: cfg.seed,
        config_tag: trained.snapshot.config_tag,
    };
    let ckpt_path = dir.join(CKPT_FILE);
    let terms_path = dir.join(TERMS_FILE);
    write_atomic(&ckpt_path, &checkpoint::encode(&trained.snapshot))?;
    artifact::save(&terms_path, &meta, &trained.terms)?;
    Ok((ckpt_path, terms_path))
}

/// Trains with the decoupled mini-batch scheme and exports the result as a
/// serving bundle — the one-call path the bench, the `experiments serve`
/// subcommand, and the test suites share.
pub fn train_and_export(
    dir: &Path,
    filter: Arc<dyn SpectralFilter>,
    data: &Dataset,
    cfg: &TrainConfig,
) -> Result<TrainReport, ServeError> {
    let trained = try_train_mini_batch_trained(filter, data, cfg)
        .map_err(|e| ServeError::Train(e.to_string()))?;
    export(dir, &trained, cfg, data)?;
    Ok(trained.report)
}

/// Loads a bundle directory into a ready [`ServeEngine`], verifying both
/// codecs and the run pairing.
pub fn load_engine(dir: &Path) -> Result<ServeEngine, ServeError> {
    let ckpt_bytes = std::fs::read(dir.join(CKPT_FILE))
        .map_err(|e| ServeError::Io(format!("{}: {e}", dir.join(CKPT_FILE).display())))?;
    let snapshot = checkpoint::decode(&ckpt_bytes)?;
    let art = artifact::load(&dir.join(TERMS_FILE))?;
    ServeEngine::new(snapshot, art)
}

/// Offline single-node inference on the same bundle: loads a **fresh**
/// engine and computes one node's logits with nothing else in the batch.
/// This is the bit-identity reference the e2e suite compares every served
/// response against.
pub fn offline_logits(dir: &Path, node: u32) -> Result<Vec<f32>, ServeError> {
    let mut engine = load_engine(dir)?;
    assert!(
        (node as usize) < engine.nodes(),
        "node {node} out of range for offline reference"
    );
    Ok(engine.logits(&[node]).row(0).to_vec())
}
