//! Quickstart: generate a graph, pick a spectral filter, train, evaluate.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use spectral_gnn::core::{make_filter, ResponseParams};
use spectral_gnn::data::{dataset_spec, GenScale};
use spectral_gnn::train::{train_full_batch, TrainConfig};

fn main() {
    // 1. A cora-like attributed graph (2708 nodes, homophily 0.83).
    let data = dataset_spec("cora")
        .expect("registered dataset")
        .generate(GenScale::Bench, 0);
    println!(
        "dataset {:?}: n = {}, m = {}, measured homophily = {:.2}",
        data.name,
        data.nodes(),
        data.edges(),
        data.node_homophily()
    );

    // 2. A spectral filter from the 27-filter registry: truncated
    //    personalized PageRank with K = 10 hops.
    let filter = make_filter("PPR", 10).expect("registered filter");
    let spec = filter.spec(data.features.cols());
    let rp = ResponseParams::initial(&spec);
    println!("filter {} — frequency response g(λ):", filter.name());
    for (lambda, g) in spectral_gnn::core::filter::sample_response(filter.as_ref(), &rp, 5) {
        println!("  g({lambda:.1}) = {g:.4}");
    }

    // 3. Full-batch training of φ1(g(L̃)·φ0(X)) with Adam.
    let cfg = TrainConfig {
        epochs: 100,
        ..TrainConfig::default()
    };
    let report = train_full_batch(filter, &data, &cfg);

    // 4. The report carries both efficacy and the efficiency breakdown.
    println!("\n{}", report.summary());
    println!(
        "test accuracy {:.1}% after {} epochs ({:.1} ms/epoch)",
        report.test_metric * 100.0,
        report.epochs_run,
        report.train_epoch_s * 1e3
    );
}
