//! Filter choice under homophily vs heterophily (the paper's RQ3).
//!
//! Trains a low-pass, a high-frequency-capable, and a filter-bank filter on
//! a homophilous and a heterophilous graph with otherwise identical
//! statistics, demonstrating that effectiveness comes from the match
//! between frequency response and graph signal.
//!
//! ```sh
//! cargo run --release --example heterophily_filters
//! ```

use spectral_gnn::core::make_filter;
use spectral_gnn::data::{csbm, CsbmParams, Metric};
use spectral_gnn::train::{train_full_batch, TrainConfig};

fn main() {
    let base = CsbmParams {
        nodes: 3000,
        edges: 15_000,
        classes: 5,
        feature_dim: 64,
        signal: 0.6,
        degree_exponent: 2.5,
        homophily: 0.0, // set below
    };
    let filters = ["Impulse", "PPR", "VarMonomial", "Jacobi", "FAGNN"];
    let cfg = TrainConfig {
        epochs: 80,
        hops: 8,
        ..TrainConfig::default()
    };

    println!(
        "{:<14} {:>12} {:>12}",
        "filter", "homophilous", "heterophilous"
    );
    for fname in filters {
        let mut row = format!("{fname:<14}");
        for h in [0.85f64, 0.10] {
            let params = CsbmParams {
                homophily: h,
                ..base.clone()
            };
            let data = csbm::generate(&format!("csbm-h{h:.2}"), &params, Metric::Accuracy, 7);
            let report = train_full_batch(make_filter(fname, cfg.hops).unwrap(), &data, &cfg);
            row += &format!(" {:>11.1}%", report.test_metric * 100.0);
        }
        println!("{row}");
    }
    println!(
        "\nExpected shape (paper RQ3): the pure low-pass Impulse collapses under\n\
         heterophily, while variable filters (VarMonomial, Jacobi) and the\n\
         low+high-pass bank (FAGNN) hold up."
    );
}
