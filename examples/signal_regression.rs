//! Spectral signal regression (the paper's Table 7, single column).
//!
//! Fits several filters to the band-pass target `g*(λ) = e^{-10(λ-1)²}` and
//! prints the learned frequency responses next to the target — making the
//! difference between low-pass-only and band-capable bases visible.
//!
//! ```sh
//! cargo run --release --example signal_regression
//! ```

use std::sync::Arc;

use spectral_gnn::core::make_filter;
use spectral_gnn::data::signals::{regression_task, Signal};
use spectral_gnn::data::{dataset_spec, GenScale};
use spectral_gnn::sparse::PropMatrix;
use spectral_gnn::train::regression::fit_signal;

fn main() {
    let data = dataset_spec("cora").unwrap().generate(GenScale::Tiny, 0);
    let pm = Arc::new(PropMatrix::new(&data.graph, 0.5));
    let task = regression_task(&pm, Signal::Band, 4, 0);
    println!(
        "target: {} = e^(-10(λ-1)²) on a {}-node graph",
        task.signal.name(),
        pm.n()
    );

    println!("\n{:<12} {:>8}", "filter", "R²×100");
    for fname in [
        "Impulse",
        "HK",
        "Monomial",
        "Horner",
        "Chebyshev",
        "Bernstein",
        "OptBasis",
    ] {
        let filter = make_filter(fname, 10).unwrap();
        let rep = fit_signal(filter, &pm, &task, 200, 0.05, 0);
        println!("{:<12} {:>8.2}", fname, rep.r2.max(0.0) * 100.0);
    }
    println!(
        "\nExpected shape (paper Table 7): low-pass fixed filters (Impulse, HK)\n\
         cannot express a band-pass response; bases with genuine band capability\n\
         (Horner's residual terms, OptBasis' adaptive basis) score far higher."
    );
}
