//! Full-batch vs decoupled mini-batch on a medium graph (the paper's RQ2).
//!
//! Shows the structural trade: MB pays a one-off CPU precomputation and RAM
//! for the stored basis terms, in exchange for device memory that no longer
//! scales with the graph.
//!
//! ```sh
//! cargo run --release --example minibatch_scaling
//! ```

use spectral_gnn::core::make_filter;
use spectral_gnn::data::{dataset_spec, GenScale};
use spectral_gnn::train::memory::fmt_bytes;
use spectral_gnn::train::{train_full_batch, train_mini_batch, TrainConfig};

fn main() {
    let data = dataset_spec("flickr").unwrap().generate(GenScale::Bench, 0);
    println!(
        "dataset {} at bench scale: n = {}, m = {}",
        data.name,
        data.nodes(),
        data.edges()
    );

    let cfg = TrainConfig {
        epochs: 25,
        patience: 0,
        hops: 10,
        ..TrainConfig::default()
    };
    println!(
        "\n{:<12} {:<3} {:>8} {:>10} {:>11} {:>12} {:>12}",
        "filter", "sch", "metric", "pre(s)", "epoch(s)", "device", "ram"
    );
    for fname in ["Monomial", "PPR", "Chebyshev"] {
        for scheme in ["FB", "MB"] {
            let filter = make_filter(fname, cfg.hops).unwrap();
            let r = if scheme == "FB" {
                train_full_batch(filter, &data, &cfg)
            } else {
                train_mini_batch(filter, &data, &cfg)
            };
            println!(
                "{:<12} {:<3} {:>8.4} {:>10.3} {:>11.4} {:>12} {:>12}",
                fname,
                r.scheme,
                r.test_metric,
                r.precompute_s,
                r.train_epoch_s,
                fmt_bytes(r.device_bytes),
                fmt_bytes(r.ram_bytes)
            );
        }
    }
    println!(
        "\nExpected shape (paper RQ2): MB matches FB accuracy, moves the filter\n\
         cost into the precompute column, and cuts device memory by an order of\n\
         magnitude — the gap that lets MB scale to million-node graphs."
    );
}
