//! Link prediction with spectral node embeddings (paper Section 6.1.2).
//!
//! Precomputes PPR-filtered node embeddings once, then trains a Hadamard-MLP
//! pair scorer over positive/negative edge samples — the
//! transformation-dominated regime that forces mini-batch training.
//!
//! ```sh
//! cargo run --release --example link_prediction
//! ```

use spectral_gnn::autograd::{Adam, Optimizer, ParamStore, Tape};
use spectral_gnn::core::op::{combine_eager, CoeffValues};
use spectral_gnn::core::{make_filter, PropCtx};
use spectral_gnn::data::linkpred::link_splits;
use spectral_gnn::data::{dataset_spec, GenScale};
use spectral_gnn::dense::rng as drng;
use spectral_gnn::models::linkpred::LinkPredictor;
use spectral_gnn::sparse::PropMatrix;
use spectral_gnn::train::metrics::roc_auc_pairs;

fn main() {
    let data = dataset_spec("pubmed").unwrap().generate(GenScale::Bench, 0);
    let pm = PropMatrix::new(&data.graph, 0.5);
    let splits = link_splits(&data.graph, 2, 1);
    println!(
        "graph n = {}, m = {}; train pairs = {} (1 pos : 2 neg)",
        data.nodes(),
        data.edges(),
        splits.train.len()
    );

    // Node embeddings: one PPR filtering pass over the raw attributes.
    let filter = make_filter("PPR", 10).unwrap();
    let spec = filter.spec(data.features.cols());
    let ctx = PropCtx::forward(&pm);
    let terms = filter.propagate(&ctx, &data.features);
    let z = combine_eager(&spec, &terms, &CoeffValues::initial(&spec));

    // Pair scorer trained over mini-batches of edge samples.
    let mut rng = drng::seeded(1);
    let mut store = ParamStore::new();
    let head = LinkPredictor::new(z.cols(), 64, 0.2, &mut store, &mut rng);
    let mut opt = Adam::new(0.01, 1e-5);
    let batch = 4096;
    for epoch in 0..8u64 {
        let mut last_loss = 0.0f32;
        for (b, chunk) in splits.train.pairs.chunks(batch).enumerate() {
            store.zero_grads();
            let start = b * batch;
            let labels = splits.train.labels[start..start + chunk.len()].to_vec();
            let mut tape = Tape::new(true, epoch * 1000 + b as u64);
            let loss = head.loss(&mut tape, &z, chunk, labels, &store);
            last_loss = tape.value(loss).get(0, 0);
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        println!("epoch {epoch}: BCE loss {last_loss:.4}");
    }

    // Test AUC.
    let mut scores = Vec::with_capacity(splits.test.len());
    for chunk in splits.test.pairs.chunks(batch) {
        let mut tape = Tape::new(false, 0);
        let logits = head.score(&mut tape, &z, chunk, &store);
        scores.extend((0..chunk.len()).map(|i| tape.value(logits).get(i, 0) as f64));
    }
    println!(
        "test ROC AUC = {:.4}",
        roc_auc_pairs(&scores, &splits.test.labels)
    );
}
