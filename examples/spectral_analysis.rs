//! Why filters work: spectral energy of the task vs. filter responses
//! (the paper's RQ7 in one screen).
//!
//! Decomposes the label signal of a homophilous and a heterophilous graph
//! over the exact Laplacian eigenbasis, then prints the frequency responses
//! of a low-pass and a high-pass-capable filter against those energy
//! profiles.
//!
//! ```sh
//! cargo run --release --example spectral_analysis
//! ```

use spectral_gnn::analysis::spectrum::{band_energy, label_signal, laplacian_spectrum};
use spectral_gnn::core::filter::sample_response;
use spectral_gnn::core::{make_filter, ResponseParams};
use spectral_gnn::data::{csbm, CsbmParams, Metric};
use spectral_gnn::sparse::PropMatrix;

fn main() {
    let base = CsbmParams {
        nodes: 300,
        edges: 1200,
        classes: 3,
        feature_dim: 16,
        signal: 1.0,
        degree_exponent: 2.5,
        homophily: 0.0,
    };
    let bands = 8;

    println!("label-signal energy per frequency band (λ ∈ [0,2], {bands} bands):");
    for h in [0.85f64, 0.10] {
        let params = CsbmParams {
            homophily: h,
            ..base.clone()
        };
        let data = csbm::generate("g", &params, Metric::Accuracy, 0);
        let pm = PropMatrix::new(&data.graph, 0.5);
        let eig = laplacian_spectrum(&pm);
        let energy = band_energy(&eig, &label_signal(&data.labels, data.num_classes), bands);
        let bar: String = energy
            .iter()
            .map(|&e| {
                let level = (e * 40.0).round() as usize;
                format!("{:>5.2}{}", e, " ".repeat(0) + &"#".repeat(level.min(40)))
            })
            .collect::<Vec<_>>()
            .join("\n    ");
        println!(
            "\n  homophily {h:.2} (measured {:.2}):\n    {bar}",
            data.node_homophily()
        );
    }

    println!("\nfilter responses g(λ) sampled on [0, 2]:");
    for name in ["Impulse", "FAGNN"] {
        let filter = make_filter(name, 10).unwrap();
        let rp = ResponseParams::initial(&filter.spec(16));
        let samples = sample_response(filter.as_ref(), &rp, 9);
        let line: Vec<String> = samples
            .iter()
            .map(|(l, g)| format!("g({l:.2})={g:+.3}"))
            .collect();
        println!("  {:<8} {}", name, line.join(" "));
    }
    println!(
        "\nReading: under homophily the label energy concentrates in the low\n\
         bands, matching the low-pass Impulse response; under heterophily the\n\
         energy moves to high bands, where only the high-pass channel of\n\
         FAGNN responds — the alignment the paper identifies as the root of\n\
         filter effectiveness (C3/C6)."
    );
}
