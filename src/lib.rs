//! Umbrella crate re-exporting the spectral GNN benchmark stack.
pub use sgnn_analysis as analysis;
pub use sgnn_autograd as autograd;
pub use sgnn_core as core;
pub use sgnn_data as data;
pub use sgnn_dense as dense;
pub use sgnn_models as models;
pub use sgnn_obs as obs;
pub use sgnn_sparse as sparse;
pub use sgnn_train as train;
