//! End-to-end integration tests spanning data generation, both learning
//! schemes, and the paper's headline qualitative findings at tiny scale.

use spectral_gnn::core::make_filter;
use spectral_gnn::data::{dataset_spec, GenScale};
use spectral_gnn::train::{train_full_batch, train_mini_batch, TrainConfig};

#[test]
fn graph_filters_beat_identity_under_homophily() {
    // RQ3, homophilous half: with informative graph structure, a suitable
    // low-pass filter must beat the graph-free Identity baseline.
    let data = dataset_spec("cora").unwrap().generate(GenScale::Tiny, 0);
    let cfg = TrainConfig::fast_test(0);
    let id = train_full_batch(make_filter("Identity", cfg.hops).unwrap(), &data, &cfg);
    let ppr = train_full_batch(make_filter("PPR", cfg.hops).unwrap(), &data, &cfg);
    assert!(
        ppr.test_metric > id.test_metric + 0.03,
        "PPR {} must beat Identity {}",
        ppr.test_metric,
        id.test_metric
    );
}

#[test]
fn mini_batch_matches_full_batch_accuracy() {
    // RQ5: the schemes differ only in the transformation placement; accuracy
    // must be in the same ballpark.
    let data = dataset_spec("pubmed").unwrap().generate(GenScale::Tiny, 1);
    let mut cfg = TrainConfig::fast_test(1);
    cfg.epochs = 50;
    cfg.batch_size = 512;
    let fb = train_full_batch(make_filter("Monomial", cfg.hops).unwrap(), &data, &cfg);
    let mb = train_mini_batch(make_filter("Monomial", cfg.hops).unwrap(), &data, &cfg);
    assert!(
        (fb.test_metric - mb.test_metric).abs() < 0.12,
        "FB {} vs MB {}",
        fb.test_metric,
        mb.test_metric
    );
}

#[test]
fn mb_moves_memory_from_device_to_ram() {
    // RQ2: same filter, same data — MB must need less device memory and
    // more RAM than FB.
    let data = dataset_spec("pubmed").unwrap().generate(GenScale::Tiny, 2);
    let mut cfg = TrainConfig::fast_test(2);
    cfg.epochs = 3;
    cfg.patience = 0;
    cfg.batch_size = 128;
    let fb = train_full_batch(make_filter("Chebyshev", 6).unwrap(), &data, &cfg);
    let mb = train_mini_batch(make_filter("Chebyshev", 6).unwrap(), &data, &cfg);
    assert!(
        mb.device_bytes < fb.device_bytes / 2,
        "MB device {} must be well below FB {}",
        mb.device_bytes,
        fb.device_bytes
    );
    assert!(
        mb.ram_bytes > fb.ram_bytes,
        "MB RAM {} must exceed FB {}",
        mb.ram_bytes,
        fb.ram_bytes
    );
}

#[test]
fn all_27_filters_train_full_batch_without_panicking() {
    let data = dataset_spec("cora").unwrap().generate(GenScale::Tiny, 3);
    let mut cfg = TrainConfig::fast_test(3);
    cfg.epochs = 6;
    cfg.patience = 0;
    for name in spectral_gnn::core::all_filter_names() {
        let r = train_full_batch(make_filter(name, cfg.hops).unwrap(), &data, &cfg);
        assert!(
            r.test_metric.is_finite(),
            "{name} produced non-finite metric"
        );
        assert!(
            r.test_metric >= 0.0 && r.test_metric <= 1.0,
            "{name}: {}",
            r.test_metric
        );
    }
}

#[test]
fn all_mb_compatible_filters_train_mini_batch() {
    let data = dataset_spec("cora").unwrap().generate(GenScale::Tiny, 4);
    let mut cfg = TrainConfig::fast_test(4);
    cfg.epochs = 6;
    cfg.patience = 0;
    cfg.batch_size = 512;
    for name in spectral_gnn::core::all_filter_names() {
        let filter = make_filter(name, cfg.hops).unwrap();
        if !filter.mb_compatible() {
            continue;
        }
        let r = train_mini_batch(filter, &data, &cfg);
        assert!(r.test_metric.is_finite(), "{name}");
        assert!(
            r.precompute_s > 0.0 || name == "Identity",
            "{name} skipped precompute"
        );
    }
}

#[test]
fn deterministic_given_seed() {
    let data = dataset_spec("citeseer")
        .unwrap()
        .generate(GenScale::Tiny, 5);
    let mut cfg = TrainConfig::fast_test(5);
    cfg.epochs = 10;
    let a = train_full_batch(make_filter("VarMonomial", cfg.hops).unwrap(), &data, &cfg);
    let b = train_full_batch(make_filter("VarMonomial", cfg.hops).unwrap(), &data, &cfg);
    assert_eq!(
        a.test_metric, b.test_metric,
        "same seed must reproduce exactly"
    );
}
