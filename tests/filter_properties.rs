//! Property-based tests over the whole filter zoo.
//!
//! Invariants checked on randomly generated graphs and hop counts:
//!
//! 1. **Path agreement** — the full-batch operator and the mini-batch
//!    precompute+combine path produce identical outputs at initial
//!    coefficients (they share no code beyond `propagate`).
//! 2. **Adjoint identity** — `⟨F(x), y⟩ = ⟨x, F*(y)⟩` for the combined
//!    filter map of every generic-path filter, which is exactly what the
//!    backward pass relies on.
//! 3. **Linearity** — every filter output is linear in its input signal.

use std::sync::Arc;

use proptest::prelude::*;
use spectral_gnn::autograd::{ParamStore, Tape};
use spectral_gnn::core::op::{combine_eager, CoeffValues};
use spectral_gnn::core::{make_filter, FilterModule, PropCtx};
use spectral_gnn::dense::{rng as drng, DMat};
use spectral_gnn::sparse::{Graph, PropMatrix};

/// Builds a random connected graph with `n` nodes.
fn random_graph(n: usize, extra_edges: usize, seed: u64) -> Graph {
    let mut rng = drng::seeded(seed);
    let mut edges: Vec<(u32, u32)> = (1..n as u32)
        .map(|v| (rand::Rng::random_range(&mut rng, 0..v), v))
        .collect();
    for _ in 0..extra_edges {
        let a = rand::Rng::random_range(&mut rng, 0..n as u32);
        let b = rand::Rng::random_range(&mut rng, 0..n as u32);
        if a != b {
            edges.push((a.min(b), a.max(b)));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Filters whose basis is input-independent (the generic FB path).
const GENERIC_FILTERS: &[&str] = &[
    "Identity",
    "Linear",
    "Impulse",
    "Monomial",
    "PPR",
    "HK",
    "Gaussian",
    "VarMonomial",
    "Horner",
    "Chebyshev",
    "Clenshaw",
    "ChebInterp",
    "Bernstein",
    "Legendre",
    "Jacobi",
    "FBGNNI",
    "FBGNNII",
    "ACMGNNI",
    "ACMGNNII",
    "FAGNN",
    "G2CN",
    "GNN-LF/HF",
    "FiGURe",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fb_and_mb_agree_for_all_mb_filters(
        seed in 0u64..1000,
        n in 8usize..24,
        hops in 1usize..6,
        fidx in 0usize..23,
    ) {
        let name = GENERIC_FILTERS[fidx];
        let filter = make_filter(name, hops).unwrap();
        prop_assume!(filter.mb_compatible());
        let g = random_graph(n, n, seed);
        let pm = Arc::new(PropMatrix::new(&g, 0.5));
        let x = drng::randn_mat(n, 3, 1.0, &mut drng::seeded(seed ^ 0xabc));

        let mut store = ParamStore::new();
        let module = FilterModule::new(Arc::clone(&filter), 3, &mut store);
        let mut tape = Tape::new(false, 0);
        let xn = tape.constant(x.clone());
        let fb = module.apply_fb(&mut tape, &pm, xn, &store);
        let terms = module.precompute(&pm, &x);
        let mut tape2 = Tape::new(false, 0);
        let mb = module.combine_batch(&mut tape2, &terms, &store);
        let (a, b) = (tape.value(fb), tape2.value(mb));
        prop_assert_eq!(a.shape(), b.shape());
        for (u, v) in a.data().iter().zip(b.data()) {
            prop_assert!((u - v).abs() < 1e-3, "{}: {} vs {}", name, u, v);
        }
    }

    #[test]
    fn adjoint_identity_holds(
        seed in 0u64..1000,
        n in 8usize..20,
        hops in 1usize..5,
        fidx in 0usize..23,
    ) {
        let name = GENERIC_FILTERS[fidx];
        let filter = make_filter(name, hops).unwrap();
        let g = random_graph(n, n / 2, seed);
        let pm = PropMatrix::new(&g, 0.5);
        let spec = filter.spec(2);
        let cv = CoeffValues::initial(&spec);
        let x = drng::randn_mat(n, 2, 1.0, &mut drng::seeded(seed ^ 0x111));
        let fcols = match spec.fusion {
            spectral_gnn::core::Fusion::Concat => 2 * spec.channels.len(),
            _ => 2,
        };
        let y = drng::randn_mat(n, fcols, 1.0, &mut drng::seeded(seed ^ 0x222));

        // ⟨F x, y⟩ where F is the combined (sum-fusion) filter map.
        prop_assume!(!matches!(spec.fusion, spectral_gnn::core::Fusion::Concat));
        let fwd = {
            let ctx = PropCtx::forward(&pm);
            combine_eager(&spec, &filter.propagate(&ctx, &x), &cv)
        };
        let adj = {
            let ctx = PropCtx::adjoint(&pm);
            combine_eager(&spec, &filter.propagate(&ctx, &y), &cv)
        };
        let lhs = fwd.dot(&y);
        let rhs = x.dot(&adj);
        let scale = lhs.abs().max(rhs.abs()).max(1.0);
        prop_assert!(((lhs - rhs) / scale).abs() < 1e-4, "{}: {} vs {}", name, lhs, rhs);
    }

    #[test]
    fn filter_output_is_linear_in_signal(
        seed in 0u64..500,
        hops in 1usize..5,
        fidx in 0usize..23,
        alpha in -2.0f32..2.0,
    ) {
        let name = GENERIC_FILTERS[fidx];
        let filter = make_filter(name, hops).unwrap();
        let g = random_graph(12, 8, seed);
        let pm = PropMatrix::new(&g, 0.5);
        let spec = filter.spec(2);
        let cv = CoeffValues::initial(&spec);
        let x1 = drng::randn_mat(12, 2, 1.0, &mut drng::seeded(seed));
        let x2 = drng::randn_mat(12, 2, 1.0, &mut drng::seeded(seed ^ 7));
        let apply = |x: &DMat| {
            let ctx = PropCtx::forward(&pm);
            combine_eager(&spec, &filter.propagate(&ctx, x), &cv)
        };
        // F(x1 + α x2) == F(x1) + α F(x2).
        let mut comb = x1.clone();
        comb.axpy(alpha, &x2);
        let lhs = apply(&comb);
        let mut rhs = apply(&x1);
        rhs.axpy(alpha, &apply(&x2));
        let scale = rhs.norm().max(1.0);
        let mut diff = lhs.clone();
        diff.sub_assign_mat(&rhs);
        prop_assert!(diff.norm() / scale < 1e-4, "{}: nonlinearity {}", name, diff.norm() / scale);
    }
}

/// The normalization sweep keeps the adjoint identity even when `ρ ≠ 1/2`
/// (the operator is asymmetric and the stored transpose must be used).
#[test]
fn adjoint_identity_asymmetric_normalization() {
    for &rho in &[0.0f32, 0.25, 0.75, 1.0] {
        let g = random_graph(15, 10, 42);
        let pm = PropMatrix::new(&g, rho);
        let filter = make_filter("Chebyshev", 4).unwrap();
        let spec = filter.spec(2);
        let cv = CoeffValues::initial(&spec);
        let x = drng::randn_mat(15, 2, 1.0, &mut drng::seeded(1));
        let y = drng::randn_mat(15, 2, 1.0, &mut drng::seeded(2));
        let fwd = {
            let ctx = PropCtx::forward(&pm);
            combine_eager(&spec, &filter.propagate(&ctx, &x), &cv)
        };
        let adj = {
            let ctx = PropCtx::adjoint(&pm);
            combine_eager(&spec, &filter.propagate(&ctx, &y), &cv)
        };
        let lhs = fwd.dot(&y);
        let rhs = x.dot(&adj);
        assert!(
            ((lhs - rhs) / lhs.abs().max(1.0)).abs() < 1e-4,
            "rho {rho}: {lhs} vs {rhs}"
        );
    }
}
