//! Property-based tests of the sparse/dense substrates and the autograd
//! engine — the invariants everything above relies on.

use proptest::prelude::*;
use spectral_gnn::autograd::param::ParamGroup;
use spectral_gnn::autograd::{gradcheck::check_grads, ParamStore, Tape};
use spectral_gnn::dense::{matmul, rng as drng, DMat};
use spectral_gnn::sparse::{coo::Coo, Graph, PropMatrix};
use std::sync::Arc;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (5usize..30, 0usize..40, 0u64..10_000).prop_map(|(n, extra, seed)| {
        let mut rng = drng::seeded(seed);
        let mut edges: Vec<(u32, u32)> = (1..n as u32)
            .map(|v| (rand::Rng::random_range(&mut rng, 0..v), v))
            .collect();
        for _ in 0..extra {
            let a = rand::Rng::random_range(&mut rng, 0..n as u32);
            let b = rand::Rng::random_range(&mut rng, 0..n as u32);
            if a != b {
                edges.push((a, b));
            }
        }
        Graph::from_edges(n, &edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn csr_transpose_is_involution(g in arb_graph()) {
        let adj = g.adjacency();
        prop_assert_eq!(&adj.transpose().transpose(), adj);
    }

    #[test]
    fn undirected_adjacency_is_symmetric(g in arb_graph()) {
        let t = g.adjacency().transpose();
        prop_assert_eq!(g.adjacency(), &t);
    }

    #[test]
    fn spmm_matches_dense_reference(g in arb_graph(), seed in 0u64..1000) {
        let n = g.nodes();
        let x = drng::randn_mat(n, 3, 1.0, &mut drng::seeded(seed));
        let pm = PropMatrix::new(&g, 0.5);
        // Densify Ã and compare.
        let mut dense = DMat::zeros(n, n);
        for (r, c, v) in pm.adj().iter() {
            dense.set(r as usize, c as usize, v);
        }
        let want = matmul::matmul(&dense, &x);
        let got = pm.prop(1.0, 0.0, &x);
        for (a, b) in want.data().iter().zip(got.data()) {
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn normalized_operator_spectral_radius_at_most_one(g in arb_graph()) {
        // ‖Ã x‖∞ never exceeds ‖x‖∞ for ρ=0 (row-stochastic) operators.
        let pm = PropMatrix::with_options(&g, 0.0, true, spectral_gnn::sparse::Backend::Csr);
        let x = drng::randn_mat(g.nodes(), 2, 1.0, &mut drng::seeded(1));
        let y = pm.prop(1.0, 0.0, &x);
        prop_assert!(y.max_abs() <= x.max_abs() + 1e-5);
    }

    #[test]
    fn coalesce_is_idempotent(
        n in 2usize..10,
        entries in proptest::collection::vec((0u32..8, 0u32..8, -2.0f32..2.0), 0..40),
    ) {
        let mut coo = Coo::new(n.max(8), n.max(8));
        for (r, c, v) in entries {
            coo.push(r, c, v);
        }
        let mut once = coo.clone();
        once.coalesce();
        let mut twice = once.clone();
        twice.coalesce();
        prop_assert_eq!(once.len(), twice.len());
    }

    #[test]
    fn homophily_is_a_probability(g in arb_graph(), seed in 0u64..100) {
        let mut rng = drng::seeded(seed);
        let labels: Vec<u32> =
            (0..g.nodes()).map(|_| rand::Rng::random_range(&mut rng, 0..4u32)).collect();
        let h = spectral_gnn::sparse::stats::node_homophily(&g, &labels);
        prop_assert!((0.0..=1.0).contains(&h));
        let e = spectral_gnn::sparse::stats::edge_homophily(&g, &labels);
        prop_assert!((0.0..=1.0).contains(&e));
    }

    #[test]
    fn random_network_gradients_verify(
        seed in 0u64..300,
        hidden in 2usize..8,
        rows in 2usize..6,
    ) {
        let mut rng = drng::seeded(seed);
        let mut ps = ParamStore::new();
        let w1 = ps.add("w1", drng::glorot(3, hidden, &mut rng), ParamGroup::Network);
        let b1 = ps.add("b1", DMat::zeros(1, hidden), ParamGroup::Network);
        let w2 = ps.add("w2", drng::glorot(hidden, 2, &mut rng), ParamGroup::Filter);
        let x = drng::randn_mat(rows, 3, 1.0, &mut rng);
        let y: Vec<u32> = (0..rows as u32).map(|i| i % 2).collect();
        let targets = Arc::new(y);

        let build = |ps: &ParamStore| {
            let mut t = Tape::new(false, 0);
            let xn = t.constant(x.clone());
            let w1n = t.param(ps, w1);
            let b1n = t.param(ps, b1);
            let w2n = t.param(ps, w2);
            let h = t.matmul(xn, w1n);
            let h = t.add_bias(h, b1n);
            let h = t.tanh(h);
            let logits = t.matmul(h, w2n);
            let loss = t.softmax_cross_entropy(logits, Arc::clone(&targets));
            (t, loss)
        };
        ps.zero_grads();
        let (mut t, loss) = build(&ps);
        t.backward(loss, &mut ps);
        let report = check_grads(&mut ps, &[w1, b1, w2], |ps| {
            let (t, l) = build(ps);
            t.value(l).get(0, 0) as f64
        }, 1e-3);
        prop_assert!(report.max_rel_err < 1e-2, "max rel err {}", report.max_rel_err);
    }
}

/// Jacobi eigensolver sanity on random symmetric matrices: reconstruction
/// and eigenvalue ordering.
#[test]
fn eigensolver_reconstructs_random_symmetric_matrices() {
    for seed in 0..5u64 {
        let mut rng = drng::seeded(seed);
        let n = 8;
        let raw = drng::randn_mat(n, n, 1.0, &mut rng);
        let mut sym = DMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                sym.set(i, j, (raw.get(i, j) + raw.get(j, i)) / 2.0);
            }
        }
        let e = spectral_gnn::dense::eigen::sym_eigen(&sym);
        assert!(e.values.windows(2).all(|w| w[0] <= w[1] + 1e-9), "sorted");
        // Reconstruct.
        let mut lam = DMat::zeros(n, n);
        for i in 0..n {
            lam.set(i, i, e.values[i] as f32);
        }
        let rec = matmul::matmul(&matmul::matmul(&e.vectors, &lam), &e.vectors.transpose());
        for (a, b) in sym.data().iter().zip(rec.data()) {
            assert!((a - b).abs() < 1e-3, "seed {seed}: {a} vs {b}");
        }
    }
}
