//! Offline stand-in for `serde_json` (the subset this workspace uses:
//! `to_string` / `to_string_pretty` over the vendored `serde` facade).

use std::fmt;

/// Serialization error. The vendored pipeline is infallible, but the
/// signature mirrors `serde_json` so call sites keep their error handling.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Compact JSON encoding.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Two-space-indented JSON encoding (re-formats the compact output;
/// string-aware so braces inside values survive).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let push_newline = |out: &mut String, indent: usize| {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    };
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if let Some(&close) = chars.peek() {
                    if (c == '{' && close == '}') || (c == '[' && close == ']') {
                        out.push(close);
                        chars.next();
                        continue;
                    }
                }
                indent += 1;
                push_newline(&mut out, indent);
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                push_newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                push_newline(&mut out, indent);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_print_is_string_aware() {
        let rows = vec![("a{b".to_string(), 1u32), ("c".to_string(), 2)];
        let pretty = to_string_pretty(&rows).unwrap();
        assert!(pretty.contains("\"a{b\""), "{pretty}");
        assert!(pretty.contains('\n'));
        let compact = to_string(&rows).unwrap();
        assert_eq!(compact, "[[\"a{b\",1],[\"c\",2]]");
    }

    #[test]
    fn empty_containers_stay_inline() {
        let v: Vec<u8> = Vec::new();
        assert_eq!(to_string_pretty(&v).unwrap(), "[]");
    }
}
