//! Strategy trait and the combinators the workspace uses: numeric ranges,
//! tuples, `prop_map`, and constants.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `sample` draws a
/// single concrete value per test case.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(0, span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                // Guard against rounding up to the exclusive endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Types with a canonical full-range strategy (`proptest::prelude::any`).
pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// Full-range boolean strategy.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = Map<Range<u64>, fn(u64) -> $t>;
            fn arbitrary() -> Self::Strategy {
                (0u64..u64::MAX).prop_map(|v| v as $t)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
