//! Per-case deterministic RNG and run configuration.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep the offline runner snappier.
        ProptestConfig { cases: 32 }
    }
}

/// Marker returned by `prop_assume!` to skip (not fail) a case.
#[derive(Clone, Copy, Debug)]
pub struct Rejected;

/// SplitMix64 stream seeded from the property name and case index, so every
/// case is reproducible without persisted seeds.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic RNG for case `case` of property `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, lo + span)`; `lo` when the span is empty.
    /// (Callers pass `span = hi - lo`.)
    pub fn below(&mut self, lo: u64, span_or_hi: u64) -> u64 {
        let span = span_or_hi.wrapping_sub(lo);
        if span == 0 {
            return lo;
        }
        // Modulo draw: bias is ~span/2^64, irrelevant for test sampling.
        lo.wrapping_add(self.next_u64() % span)
    }

    /// Uniform draw in `[0, 1)` with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_names_give_distinct_streams() {
        let a = TestRng::for_case("alpha", 0).next_u64();
        let b = TestRng::for_case("beta", 0).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn unit_f64_stays_in_half_open_interval() {
        let mut rng = TestRng::for_case("unit", 7);
        for _ in 0..10_000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }
}
