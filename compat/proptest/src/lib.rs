//! Offline stand-in for `proptest` (the subset this workspace uses).
//!
//! Implements random-sampling property tests: the [`proptest!`] macro runs
//! each property for `ProptestConfig::cases` deterministic cases, sampling
//! every `arg in strategy` binding per case. Unlike real proptest there is
//! **no shrinking** — a failing case panics with its case index so it can be
//! replayed (cases are seeded from the property name and index, so failures
//! are reproducible bit-for-bit).
//!
//! Supported strategies: integer/float ranges, tuples of strategies,
//! [`strategy::Strategy::prop_map`], and [`collection::vec`].

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`vec` only).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, 0..40)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.below(self.len.start as u64, self.len.end as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Full-range uniform strategy for a type (only what `any::<T>()` needs
    /// in this workspace).
    pub fn any<T: crate::strategy::Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Runs each contained `#[test] fn name(arg in strategy, ...) { body }` for
/// `ProptestConfig::cases` deterministically seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            $(let $arg = $strat;)*
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::sample(&$arg, &mut __rng);)*
                // The immediately-invoked closure gives `prop_assume!` an
                // early-return target; rejected cases are skipped, not failed.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                let _ = __outcome;
            }
        }
    )*};
}

/// Assertion inside a property (panics, reporting the failing expression).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_sample_in_bounds(x in 3usize..17, f in -1.0f32..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(v in (0u64..100, 1usize..4).prop_map(|(a, b)| a as usize * b)) {
            prop_assert!(v < 400);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_strategy_respects_length(v in crate::collection::vec(0u8..5, 0..9)) {
            prop_assert!(v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..10)
            .map(|c| s.sample(&mut TestRng::for_case("t", c)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| s.sample(&mut TestRng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
        assert!(
            a.windows(2).any(|w| w[0] != w[1]),
            "samples should vary across cases"
        );
    }
}
