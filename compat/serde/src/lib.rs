//! Offline stand-in for `serde` (the subset this workspace uses).
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors a minimal serialization facade: a [`Serialize`] trait that writes
//! compact JSON directly into a `String`, a no-op [`Deserialize`] marker
//! (nothing in the benchmark deserializes), and derive macros for
//! named-field structs and unit enums (re-exported from `serde_derive`).
//! `serde_json::to_string_pretty` formats the compact output.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// JSON serialization (replaces serde's serializer-generic trait; the only
/// consumer in this workspace is `serde_json`).
pub trait Serialize {
    /// Appends the compact JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait kept so `#[derive(Deserialize)]` and trait bounds compile;
/// no experiment reads data back in.
pub trait Deserialize {}

/// Writes a JSON string literal (with escaping) — shared by the derive
/// macro expansion and the `&str`/`String` impls.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_display_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_display_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/Inf; mirror serde_json's lossy `null`.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_float!(f32, f64);

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_collections_encode() {
        let mut s = String::new();
        vec![1u32, 2, 3].serialize_json(&mut s);
        assert_eq!(s, "[1,2,3]");
        let mut s = String::new();
        ("a\"b".to_string(), 1.5f64).serialize_json(&mut s);
        assert_eq!(s, "[\"a\\\"b\",1.5]");
        let mut s = String::new();
        f64::NAN.serialize_json(&mut s);
        assert_eq!(s, "null");
        let mut s = String::new();
        Option::<u8>::None.serialize_json(&mut s);
        assert_eq!(s, "null");
    }
}
