//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! two shapes the workspace actually serializes — structs with named fields
//! and enums with unit variants — by scanning the raw token stream (the
//! real `syn`/`quote` stack is unavailable offline). Generated code targets
//! the vendored `serde` facade: `Serialize::serialize_json` writes compact
//! JSON; `Deserialize` is a marker impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Struct with named fields, in declaration order.
    Struct { name: String, fields: Vec<String> },
    /// Enum with unit variants, in declaration order.
    Enum { name: String, variants: Vec<String> },
}

/// Skips attribute pairs (`#` + bracket group) and visibility modifiers
/// (`pub`, optionally followed by a parenthesized restriction).
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]` — the bracket group follows immediately.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected `struct`/`enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        assert!(
            p.as_char() != '<',
            "serde stub derive: generic type `{name}` is not supported"
        );
    }
    // The body is the next brace group (skips nothing else for the shapes
    // this workspace declares).
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| {
            panic!("serde stub derive: `{name}` has no brace body (tuple/unit types unsupported)")
        });
    match kind.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_unit_variants(body),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    }
}

/// Splits a brace body into top-level comma-separated segments (tracking
/// `<...>` nesting so generic argument lists don't split).
fn top_level_segments(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for t in body {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                segments.push(Vec::new());
                continue;
            }
            _ => {}
        }
        segments.last_mut().unwrap().push(t);
    }
    segments.retain(|s| !s.is_empty());
    segments
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    top_level_segments(body)
        .into_iter()
        .map(|seg| {
            let i = skip_attrs_and_vis(&seg, 0);
            match (&seg.get(i), &seg.get(i + 1)) {
                (Some(TokenTree::Ident(id)), Some(TokenTree::Punct(p))) if p.as_char() == ':' => {
                    id.to_string()
                }
                _ => panic!("serde stub derive: only named struct fields are supported"),
            }
        })
        .collect()
}

fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    top_level_segments(body)
        .into_iter()
        .map(|seg| {
            let i = skip_attrs_and_vis(&seg, 0);
            match &seg.get(i) {
                Some(TokenTree::Ident(id)) => {
                    assert!(
                        seg.len() == i + 1,
                        "serde stub derive: only unit enum variants are supported"
                    );
                    id.to_string()
                }
                _ => panic!("serde stub derive: malformed enum variant"),
            }
        })
        .collect()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_shape(input) {
        Shape::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n fn serialize_json(&self, out: &mut ::std::string::String) {{\n out.push('{{');\n"
            ));
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(" out.push(',');\n");
                }
                out.push_str(&format!(
                    " ::serde::write_json_string(out, \"{f}\"); out.push(':'); ::serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            out.push_str(" out.push('}');\n }\n}\n");
        }
        Shape::Enum { name, variants } => {
            assert!(
                !variants.is_empty(),
                "serde stub derive: empty enum `{name}`"
            );
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n fn serialize_json(&self, out: &mut ::std::string::String) {{\n match self {{\n"
            ));
            for v in &variants {
                out.push_str(&format!(
                    " Self::{v} => ::serde::write_json_string(out, \"{v}\"),\n"
                ));
            }
            out.push_str(" }\n }\n}\n");
        }
    }
    out.parse()
        .expect("serde stub derive: generated impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_shape(input) {
        Shape::Struct { name, .. } | Shape::Enum { name, .. } => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated impl failed to parse")
}
