//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment of this repository has no access to a crates
//! registry, so the workspace vendors the thin slice of `rand` it actually
//! uses: [`rngs::SmallRng`] (xoshiro256++ seeded through SplitMix64, the
//! same generator real `rand` 0.9 uses for `SmallRng` on 64-bit targets),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `random`,
//! `random_range`, and `random_bool`.
//!
//! Determinism is the only contract the benchmark relies on: every
//! experiment seeds its generator explicitly, and the statistical tests
//! (Gaussian moments, homophily targets, training accuracy) only require a
//! generator of reasonable quality, which xoshiro256++ provides.

pub mod rngs;

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `u64` convenience constructor is provided).
pub trait SeedableRng: Sized {
    /// Expands a `u64` seed into the generator's full state via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an [`RngCore`] (the `StandardUniform`
/// distribution of real `rand`, folded into a single trait).
pub trait UniformSample {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa resolution.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for u32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for u64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for bool {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly (the `SampleRange` trait of real `rand`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, span)` (Lemire's method with
/// rejection).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            if lo < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = UniformSample::sample_uniform(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing generator interface.
pub trait Rng: RngCore {
    /// A uniform sample of `T` (floats in `[0, 1)`, full width for
    /// integers).
    fn random<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_uniform(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f32 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.random();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = rng.random_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
