//! Concrete generators (only `SmallRng` is provided).

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++, the algorithm
/// real `rand` 0.9 uses for `SmallRng` on 64-bit platforms.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 state expansion — guarantees a non-zero xoshiro state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl SmallRng {
    /// The raw xoshiro256++ state, for checkpointing. Restoring it with
    /// [`SmallRng::from_state`] resumes the output stream exactly where
    /// [`RngCore::next_u64`] left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a captured [`SmallRng::state`].
    ///
    /// # Panics
    /// Panics on the all-zero state, which is not reachable from any seed
    /// and would make xoshiro emit zeros forever.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        Self { s }
    }

    /// Overwrites this generator's state in place (resume-from-checkpoint).
    ///
    /// # Panics
    /// Panics on the all-zero state, like [`SmallRng::from_state`].
    pub fn set_state(&mut self, s: [u64; 4]) {
        *self = Self::from_state(s);
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_xoshiro256plusplus() {
        // State {1, 2, 3, 4} — first outputs of the reference C
        // implementation (Blackman & Vigna).
        let mut rng = SmallRng { s: [1, 2, 3, 4] };
        let expect: [u64; 4] = [41943041, 58720359, 3588806011781223, 3591011842654386];
        for &e in &expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut rng = SmallRng::seed_from_u64(11);
        let _ = rng.next_u64();
        let saved = rng.state();
        let expect: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let mut restored = SmallRng::from_state(saved);
        let got: Vec<u64> = (0..8).map(|_| restored.next_u64()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn moments_of_unit_uniform() {
        use crate::Rng;
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 100_000;
        let mut sum = 0.0f64;
        let mut sq = 0.0f64;
        for _ in 0..n {
            let x: f64 = rng.random();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.01, "var {var}");
    }
}
