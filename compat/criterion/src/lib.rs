//! Offline stand-in for `criterion` (the subset this workspace's benches
//! use). Measures wall-clock time per iteration — warmup pass, then a
//! measured pass sized from the warmup estimate — and prints one line per
//! benchmark. No statistical analysis, plots, or saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver. `Default` is the only constructor used.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group; benchmark output lines are prefixed with it.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// One-off benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, 100, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of measured samples (scales measuring time).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the offline harness reports only
    /// time per iteration, not derived throughput.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Runs the closure's `iter` calls and prints the per-iteration time.
pub struct Bencher {
    sample_size: usize,
    reported: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, averaging over a measured batch sized so the whole
    /// measurement takes a bounded amount of wall clock.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup: run until ~20ms elapses (at least once) to fault in
        // caches and estimate the per-iteration cost.
        let warmup_budget = Duration::from_millis(20);
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        loop {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= warmup_budget {
                break;
            }
        }
        let est = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Measured pass: `sample_size` batches aggregated into one mean,
        // total time capped at ~1s.
        let target_total = Duration::from_millis(10).as_secs_f64() * self.sample_size as f64;
        let iters = ((target_total / est.max(1e-9)) as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        let elapsed = start.elapsed();
        self.reported = Some(Duration::from_secs_f64(
            elapsed.as_secs_f64() / iters as f64,
        ));
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        reported: None,
    };
    f(&mut bencher);
    match bencher.reported {
        Some(per_iter) => println!("{label:<48} time: {}", format_duration(per_iter)),
        None => println!("{label:<48} (no iter() call)"),
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1e6)
    } else {
        format!("{:.3} s/iter", ns / 1e9)
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Units processed per iteration. Accepted but not reported offline.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Bundles benchmark functions into one runner the `criterion_main!` macro
/// can invoke.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point that runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_time() {
        let mut reported = false;
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(1);
        group.bench_function("spin", |b| {
            b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
            reported = true;
        });
        group.finish();
        assert!(reported);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("csr", 42).into_benchmark_id(), "csr/42");
        assert_eq!(BenchmarkId::from_parameter(7).into_benchmark_id(), "7");
    }
}
