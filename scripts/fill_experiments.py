#!/usr/bin/env python3
"""Splices harness output (results_raw.log) into EXPERIMENTS.md.

Each `<!-- RESULTS:key -->` marker is replaced by the matching `== … ==`
block(s) from the log, wrapped in a code fence. Re-runnable: markers are
preserved inside the fences.
"""
import re
import sys

HEADERS = {
    "table1": "== Table 1:",
    "table3": "== Table 3:",
    "table5": "== Table 5:",
    "table6": "== Table 6:",
    "table7": "== Table 7:",
    "table9": "== Table 9:",
    "table10": "== Table 10:",
    "table11": "== Table 11:",
    "fig2": "== Figure 2:",
    "fig3": "== Figure 3:",
    "fig4": "== Figure 4:",
    "fig5": "== Figure 5:",
    "fig6": "== Figure 6:",
    "fig7": "== Figure 7:",
    "fig8": "== Figure 8:",
    "fig9": "== Figure 9:",
    "fig10": "== Figure 10:",
}


def blocks(log: str):
    """Yield (header_line, body) for each `== … ==` section of the log."""
    out = {}
    cur_key, cur = None, []
    for line in log.splitlines():
        if line.startswith("== "):
            if cur_key is not None:
                out.setdefault(cur_key, []).append("\n".join(cur).strip("\n"))
            cur_key, cur = line, [line]
        elif cur_key is not None:
            cur.append(line)
    if cur_key is not None:
        out.setdefault(cur_key, []).append("\n".join(cur).strip("\n"))
    return out


def main(log_path: str, md_path: str) -> None:
    log = open(log_path).read()
    md = open(md_path).read()
    secs = blocks(log)

    def body_for(key: str) -> str | None:
        prefix = HEADERS[key]
        parts = []
        for header, bodies in secs.items():
            if header.startswith(prefix):
                parts.extend(bodies)
        return "\n\n".join(parts) if parts else None

    for key in HEADERS:
        marker = f"<!-- RESULTS:{key} -->"
        if marker not in md:
            continue
        body = body_for(key)
        if body is None:
            print(f"warning: no log section for {key}", file=sys.stderr)
            continue
        # Replace marker (and any previous fenced block right after it).
        pattern = re.escape(marker) + r"(\n```text\n.*?\n```)?"
        replacement = f"{marker}\n```text\n{body}\n```"
        md = re.sub(pattern, replacement.replace("\\", "\\\\"), md, count=1, flags=re.S)
    open(md_path, "w").write(md)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "results_raw.log",
         sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md")
