#!/usr/bin/env bash
# Regenerates every table/figure at sizes tuned for a small single machine.
# Full-fidelity runs (all 22 datasets, 10 seeds, 500 epochs, --scale full)
# use the same commands with the flags from the paper — see README.md.
set -euo pipefail
cd "$(dirname "$0")/.."
EXP=target/release/experiments
RUN() { echo "### $*" >&2; "$EXP" "$@" --json || echo "!! $* failed" >&2; }

# Cheap structural tables first.
RUN table1
RUN table3

# Effectiveness (Tables 5/10): small datasets covering both regimes.
RUN table5  --datasets chameleon,minesweeper,roman-empire --seeds 2 --epochs 25 --hidden 32
RUN table10 --datasets chameleon,minesweeper --seeds 2 --epochs 20 --hidden 32

# Signal regression (Table 7).
RUN table7 --seeds 1 --epochs 80

# Efficiency (Tables 9/11) on propagation-heavy medium/large graphs.
RUN table9  --datasets genius,twitch-gamer --filters Identity,Linear,PPR,Monomial,VarMonomial,Chebyshev,Bernstein,Jacobi,OptBasis,FiGURe --epochs 6 --hidden 32
RUN table11 --datasets genius,twitch-gamer --filters Identity,Linear,PPR,Monomial,VarMonomial,Chebyshev,Bernstein,Jacobi,OptBasis,FiGURe --epochs 6 --hidden 32

# Stage breakdown (Figure 2).
RUN fig2 --datasets twitch-gamer --filters PPR,Monomial,Chebyshev,Jacobi --epochs 6 --hidden 32

# Scale series (Figure 3).
RUN fig3 --datasets cora,pubmed,flickr --filters Identity,Impulse,PPR,VarMonomial,Chebyshev --epochs 10 --hidden 32

# Seed variance (Figure 4).
RUN fig4 --datasets cora --filters Impulse,PPR,Monomial,Chebyshev --seeds 5 --epochs 12 --hidden 32

# Hardware sensitivity (Figure 5) on a propagation-heavy graph.
RUN fig5 --datasets twitch-gamer --epochs 8 --hidden 32

# Link prediction (Figure 6) on a low-dimensional medium graph.
RUN fig6 --datasets genius --filters Identity,PPR,Monomial,Chebyshev,Jacobi --epochs 8 --hidden 32

# Hop sweep (Figure 7).
RUN fig7 --datasets chameleon,roman-empire --epochs 10 --hidden 32

# t-SNE cluster quality (Figure 8).
RUN fig8 --datasets cora,chameleon

# Degree gaps (Figures 9/10).
RUN fig9  --datasets cora,chameleon --filters Identity,Impulse,PPR,VarMonomial,Jacobi,FAGNN --epochs 12 --hidden 32
RUN fig10 --datasets chameleon,roman-empire --epochs 10 --hidden 32

# Baselines (Table 6): medium graph + an OOM-provoking budget on pokec.
RUN table6 --datasets ogbn-arxiv --epochs 8 --hidden 32 --device-budget-mb 512
RUN table6 --datasets pokec --epochs 8 --hidden 32 --device-budget-mb 256

# Framework ablations (beyond the paper's tables).
RUN ablation --datasets cora,roman-empire --epochs 10 --hidden 32

echo "all experiments done" >&2
